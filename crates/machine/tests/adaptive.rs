//! Adaptive sub-blocking (future-work extension): cold lines pay 2 bits,
//! lines with repeated false conflicts get promoted to fine tracking.

use asf_core::detector::DetectorKind;
use asf_machine::machine::{AdaptiveConfig, Machine, SimConfig};
use asf_machine::txprog::{ScriptedWorkload, TxAttempt, TxOp, WorkItem};
use asf_mem::addr::Addr;
use asf_mem::config::MachineConfig;

fn tx(ops: Vec<TxOp>) -> WorkItem {
    WorkItem::Tx(TxAttempt::new(ops))
}

/// A repeating reader/writer false-sharing pair on one line: reader reads
/// bytes 0..8, writer writes bytes 32..40, over and over.
fn repeated_false_sharing(rounds: usize) -> ScriptedWorkload {
    let reader = tx(vec![
        TxOp::Read { addr: Addr(0x1000), size: 8 },
        TxOp::Compute { cycles: 400 },
    ]);
    let writer = tx(vec![
        TxOp::Compute { cycles: 150 },
        TxOp::Write { addr: Addr(0x1020), size: 8, value: 1 },
        TxOp::Compute { cycles: 250 },
    ]);
    ScriptedWorkload {
        name: "repeat-fs",
        scripts: vec![vec![reader; rounds], vec![writer; rounds]],
    }
}

fn adaptive_cfg() -> SimConfig {
    let mut c = SimConfig::paper(DetectorKind::Baseline);
    c.machine = MachineConfig::opteron_with_cores(2);
    c.adaptive = Some(AdaptiveConfig { promote_after: 2, fine: 8 });
    c
}

#[test]
fn hot_line_gets_promoted_and_false_conflicts_stop() {
    let out = Machine::run(&repeated_false_sharing(30), adaptive_cfg());
    // The first couple of rounds conflict at line granularity; after
    // promotion the disjoint accesses coexist.
    assert!(out.promoted_lines >= 1, "the hot line must be promoted");
    let false_total = out.stats.conflicts.false_total();
    assert!(
        (1..=8).contains(&false_total),
        "expected a few pre-promotion false conflicts, got {false_total}"
    );
    assert_eq!(out.stats.isolation_violations, 0);
}

#[test]
fn cold_lines_stay_cheap() {
    // A single round (even with a couple of retry-induced repeats) stays
    // below a conservative promotion threshold.
    let mut c = adaptive_cfg();
    c.adaptive = Some(AdaptiveConfig { promote_after: 8, fine: 8 });
    let out = Machine::run(&repeated_false_sharing(1), c);
    assert_eq!(out.promoted_lines, 0);
    assert!(out.stats.conflicts.false_total() < 8);
}

#[test]
fn adaptive_matches_fine_grained_reduction_on_hot_workloads() {
    // On a sustained false-sharing workload, adaptive lands near sb8 while
    // baseline keeps aborting.
    let rounds = 40;
    let base = Machine::run(&repeated_false_sharing(rounds), {
        let mut c = adaptive_cfg();
        c.adaptive = None;
        c
    });
    let sb8 = Machine::run(&repeated_false_sharing(rounds), {
        let mut c = adaptive_cfg();
        c.adaptive = None;
        c.detector = DetectorKind::SubBlock(8);
        c
    });
    let adaptive = Machine::run(&repeated_false_sharing(rounds), adaptive_cfg());
    assert!(base.stats.conflicts.false_total() > 10, "baseline keeps conflicting");
    assert_eq!(sb8.stats.conflicts.false_total(), 0);
    assert!(
        adaptive.stats.conflicts.false_total() <= 8,
        "adaptive must approach sb8 after warmup: {}",
        adaptive.stats.conflicts.false_total()
    );
}

#[test]
fn adaptive_preserves_serializability() {
    let item = tx(vec![
        TxOp::Update { addr: Addr(0x2000), size: 8, delta: 1 },
        TxOp::Compute { cycles: 50 },
    ]);
    let w = ScriptedWorkload {
        name: "counter",
        scripts: (0..4).map(|_| vec![item.clone(); 20]).collect(),
    };
    let mut c = SimConfig::paper(DetectorKind::Baseline);
    c.machine = MachineConfig::opteron_with_cores(4);
    c.adaptive = Some(AdaptiveConfig::standard());
    let out = Machine::run(&w, c);
    assert_eq!(out.memory.read_u64(Addr(0x2000), 8), 80);
    assert_eq!(out.stats.isolation_violations, 0);
}

#[test]
#[should_panic(expected = "invalid adaptive fine granularity")]
fn invalid_fine_granularity_is_rejected() {
    let mut c = SimConfig::paper(DetectorKind::Baseline);
    c.adaptive = Some(AdaptiveConfig { promote_after: 1, fine: 3 });
    let _ = Machine::new(&repeated_false_sharing(1), c);
}
