//! The DPTM-style related-work mode (paper §II): WAR conflicts are
//! speculated through and validated at commit. These tests pin its two
//! defining properties — it removes WAR false aborts but cannot touch RAW
//! ones, and value validation preserves correctness.

use asf_core::detector::DetectorKind;
use asf_machine::machine::{Machine, SimConfig};
use asf_machine::txprog::{ScriptedWorkload, TxAttempt, TxOp, WorkItem};
use asf_mem::addr::Addr;
use asf_mem::config::MachineConfig;

fn tx(ops: Vec<TxOp>) -> WorkItem {
    WorkItem::Tx(TxAttempt::new(ops))
}

fn cfg(war_speculation: bool) -> SimConfig {
    let mut c = SimConfig::paper(DetectorKind::Baseline);
    c.machine = MachineConfig::opteron_with_cores(2);
    c.war_speculation = war_speculation;
    c
}

/// Reader reads bytes 0..8; writer later writes *disjoint* bytes 32..40 of
/// the same line (false WAR at line granularity).
fn false_war() -> ScriptedWorkload {
    ScriptedWorkload {
        name: "false-war",
        scripts: vec![
            vec![tx(vec![
                TxOp::Read { addr: Addr(0x1000), size: 8 },
                TxOp::WaitUntil { cycle: 3_000 },
            ])],
            vec![tx(vec![
                TxOp::WaitUntil { cycle: 1_000 },
                TxOp::Write { addr: Addr(0x1020), size: 8, value: 9 },
            ])],
        ],
    }
}

/// Reader reads the very bytes the writer writes (true WAR), and the writer
/// commits before the reader does — validation must catch the stale read.
fn true_war_writer_commits_first() -> ScriptedWorkload {
    ScriptedWorkload {
        name: "true-war",
        scripts: vec![
            vec![tx(vec![
                TxOp::Read { addr: Addr(0x2000), size: 8 },
                TxOp::WaitUntil { cycle: 3_000 },
                // Copy what we read into another line — serializability
                // witness: must equal the value at read time.
                TxOp::Write { addr: Addr(0x4000), size: 8, value: 1 },
            ])],
            vec![tx(vec![
                TxOp::WaitUntil { cycle: 1_000 },
                TxOp::Write { addr: Addr(0x2000), size: 8, value: 7 },
            ])],
        ],
    }
}

#[test]
fn war_speculation_avoids_false_war_aborts() {
    // Baseline eager: the false WAR aborts the reader.
    let eager = Machine::run(&false_war(), cfg(false));
    assert!(eager.stats.conflicts.false_total() >= 1);
    assert!(eager.stats.tx_aborted >= 1);

    // DPTM mode: the reader speculates through and validation passes
    // (disjoint bytes ⇒ values unchanged).
    let dptm = Machine::run(&false_war(), cfg(true));
    assert_eq!(dptm.stats.tx_aborted, 0, "false WAR must not abort");
    assert!(dptm.stats.war_speculations >= 1);
    assert_eq!(dptm.stats.aborts_by_cause[5], 0, "validation must pass");
    assert_eq!(dptm.stats.tx_committed, 2);
}

#[test]
fn validation_catches_true_war() {
    let out = Machine::run(&true_war_writer_commits_first(), cfg(true));
    // The reader speculated through a *true* WAR; the writer committed
    // first, so validation fails and the reader retries.
    assert!(out.stats.war_speculations >= 1);
    assert!(out.stats.aborts_by_cause[5] >= 1, "validation abort expected");
    assert_eq!(out.stats.tx_committed, 2);
    assert_eq!(out.memory.read_u64(Addr(0x2000), 8), 7);
}

#[test]
fn war_speculation_cannot_remove_raw_false_conflicts() {
    // The paper's §II criticism: a reader probing a line with a remote
    // speculative *write* in a different part (false RAW) still aborts the
    // writer — value validation has nothing to offer there.
    let w = ScriptedWorkload {
        name: "false-raw",
        scripts: vec![
            vec![tx(vec![
                TxOp::Write { addr: Addr(0x3000), size: 8, value: 5 },
                TxOp::WaitUntil { cycle: 3_000 },
            ])],
            vec![tx(vec![
                TxOp::WaitUntil { cycle: 1_000 },
                TxOp::Read { addr: Addr(0x3020), size: 8 },
            ])],
        ],
    };
    for mode in [false, true] {
        let out = Machine::run(&w, cfg(mode));
        assert!(
            out.stats.conflicts.false_total() >= 1,
            "war_speculation={mode}: the false RAW must still abort the writer"
        );
    }
}

#[test]
fn serializability_holds_under_war_speculation() {
    // Shared counter increments: Updates read-then-write the same bytes, so
    // WAR speculation plus validation must still serialize them exactly.
    let item = tx(vec![
        TxOp::Update { addr: Addr(0x5000), size: 8, delta: 1 },
        TxOp::Compute { cycles: 50 },
    ]);
    let w = ScriptedWorkload {
        name: "counter",
        scripts: (0..4).map(|_| vec![item.clone(); 20]).collect(),
    };
    let mut c = SimConfig::paper(DetectorKind::Baseline);
    c.machine = MachineConfig::opteron_with_cores(4);
    c.war_speculation = true;
    let out = Machine::run(&w, c);
    assert_eq!(out.memory.read_u64(Addr(0x5000), 8), 80, "lost updates");
    assert_eq!(out.stats.tx_committed, 80);
}
