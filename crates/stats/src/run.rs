//! Per-run statistics bundle filled in by the simulator.

use crate::conflict::ConflictStats;
use crate::fault::FaultStats;
use crate::histogram::{LineHistogram, OffsetHistogram};
use crate::series::TimeSeries;
use asf_core::detector::ConflictType;
use asf_mem::addr::LineAddr;
use asf_mem::mask::AccessMask;

/// Why a transaction attempt aborted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AbortCause {
    /// A remote access conflicted with this transaction's speculative state.
    Conflict {
        /// WAR / RAW / WAW classification.
        kind: ConflictType,
        /// Oracle verdict (false ⇒ a false conflict caused this abort).
        is_true: bool,
    },
    /// Speculative footprint exceeded what the L1 can pin (best-effort HTM).
    Capacity,
    /// The program requested an abort (labyrinth's path invalidation).
    User,
    /// A core acquired the software fallback lock, aborting all subscribed
    /// transactions (the standard best-effort-HTM progress guarantee).
    LockFallback,
    /// Commit-time value validation failed (DPTM-style WAR speculation —
    /// the related-work mode of paper §II).
    Validation,
    /// An abort injected by the deterministic fault layer (spurious abort
    /// or transient false probe conflict). Counted in [`FaultStats`], not
    /// in `aborts_by_cause` — injected noise must not pollute the paper's
    /// abort taxonomy.
    Spurious,
}

/// Everything measured during one simulation run.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RunStats {
    /// Distinct transactions begun (first attempts).
    pub tx_started: u64,
    /// Total attempts including retries.
    pub tx_attempts: u64,
    /// Committed transactions.
    pub tx_committed: u64,
    /// Aborted attempts.
    pub tx_aborted: u64,
    /// Aborts by cause: [conflict-true, conflict-false, capacity, user,
    /// lock-fallback, validation].
    pub aborts_by_cause: [u64; 6],
    /// Transactions completed via the software fallback lock (after
    /// exhausting hardware retries).
    pub fallback_commits: u64,
    /// Transactional reads that overlapped a live remote write set without
    /// any conflict having been raised — must be zero whenever the dirty
    /// mechanism is enabled (the Figure 6 correctness property).
    pub isolation_violations: u64,
    /// Local L1 hits treated as misses because they touched dirty bytes.
    pub dirty_refetches: u64,
    /// WAR conflicts speculated through instead of aborted (DPTM-style
    /// related-work mode; always 0 under the paper's eager designs).
    pub war_speculations: u64,
    /// Signature-mode conflicts whose victim never touched the probed line
    /// at all — pure Bloom-filter aliasing (LogTM-SE related-work mode).
    pub sig_alias_conflicts: u64,
    /// Coherence probes issued (one per miss/upgrade, regardless of fabric).
    pub probes: u64,
    /// Remote cores actually visited by probes: `probes × (N−1)` under
    /// broadcast snooping, less under the probe-filter fabric.
    pub probe_targets: u64,
    /// L1 hits (per line fragment).
    pub l1_hits: u64,
    /// L1 misses (per line fragment), including dirty refetches.
    pub l1_misses: u64,
    /// Conflict counts (every conflict detected, whether or not the victim
    /// had already aborted this attempt for another reason).
    pub conflicts: ConflictStats,
    /// Cumulative started transactions over time (Figure 3, upper curve).
    pub started_series: TimeSeries,
    /// Cumulative false conflicts over time (Figure 3, lower curve).
    pub false_series: TimeSeries,
    /// False conflicts by cache-line index (Figure 4).
    pub false_by_line: LineHistogram,
    /// Transactional accesses by intra-line location (Figure 5).
    pub access_offsets: OffsetHistogram,
    /// Total execution time: max core clock at completion, in cycles.
    pub cycles: u64,
    /// Cycles spent in backoff across all cores.
    pub backoff_cycles: u64,
    /// Largest retry count observed for a single transaction.
    pub max_retries: u32,
    /// Retries-at-commit distribution: bucket *i* counts transactions that
    /// committed after exactly *i* retries (last bucket: ≥ 15). Behind the
    /// paper's "very high average retry times" observation for intruder.
    pub retry_histogram: [u64; 16],
    /// Injected-fault accounting; all zero when fault injection is off.
    pub faults: FaultStats,
}

impl RunStats {
    /// Record the first attempt of a new transaction at `cycle`.
    pub fn on_tx_start(&mut self, cycle: u64) {
        self.tx_started += 1;
        self.started_series.record(cycle);
    }

    /// Record an attempt (first or retry).
    pub fn on_attempt(&mut self) {
        self.tx_attempts += 1;
    }

    /// Record a commit.
    pub fn on_commit(&mut self) {
        self.tx_committed += 1;
    }

    /// Record an abort of the current attempt.
    pub fn on_abort(&mut self, cause: AbortCause) {
        self.tx_aborted += 1;
        let i = match cause {
            AbortCause::Conflict { is_true: true, .. } => 0,
            AbortCause::Conflict { is_true: false, .. } => 1,
            AbortCause::Capacity => 2,
            AbortCause::User => 3,
            AbortCause::LockFallback => 4,
            AbortCause::Validation => 5,
            // Injected faults are adversarial noise, not workload
            // behaviour: they get their own block so the paper's abort
            // taxonomy (and the golden digests over it) stay untouched.
            AbortCause::Spurious => {
                self.faults.spurious_aborts += 1;
                return;
            }
        };
        self.aborts_by_cause[i] += 1;
    }

    /// Record a detected conflict at `cycle` on `line`.
    pub fn on_conflict(&mut self, kind: ConflictType, is_true: bool, cycle: u64, line: LineAddr) {
        self.conflicts.record(kind, is_true);
        if !is_true {
            self.false_series.record(cycle);
            self.false_by_line.add(line, 1);
        }
    }

    /// Record a transactional access's intra-line location.
    pub fn on_access(&mut self, offset: usize, len: usize) {
        self.access_offsets.add_location(offset, len);
        let _ = AccessMask::from_range(offset, len); // validate range in debug
    }

    /// Record retry depth when a transaction finally commits.
    pub fn on_final_retries(&mut self, retries: u32) {
        self.max_retries = self.max_retries.max(retries);
        let bucket = (retries as usize).min(self.retry_histogram.len() - 1);
        self.retry_histogram[bucket] += 1;
    }

    /// Mean retries per committed transaction.
    pub fn mean_retries(&self) -> f64 {
        let commits: u64 = self.retry_histogram.iter().sum();
        if commits == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .retry_histogram
            .iter()
            .enumerate()
            .map(|(i, &c)| i as u64 * c)
            .sum();
        weighted as f64 / commits as f64
    }

    /// Aborts caused by false conflicts.
    pub fn false_conflict_aborts(&self) -> u64 {
        self.aborts_by_cause[1]
    }

    /// Mean attempts per started transaction (≥ 1 once anything ran).
    pub fn mean_attempts(&self) -> f64 {
        if self.tx_started == 0 {
            0.0
        } else {
            self.tx_attempts as f64 / self.tx_started as f64
        }
    }

    /// Abort ratio: aborted attempts / total attempts.
    pub fn abort_ratio(&self) -> f64 {
        if self.tx_attempts == 0 {
            0.0
        } else {
            self.tx_aborted as f64 / self.tx_attempts as f64
        }
    }

    /// Execution-time improvement of `self` over `base` (Figure 10):
    /// `1 − cycles(self)/cycles(base)`; positive ⇒ faster.
    pub fn speedup_vs(&self, base: &RunStats) -> f64 {
        if base.cycles == 0 {
            0.0
        } else {
            1.0 - self.cycles as f64 / base.cycles as f64
        }
    }

    /// Fold another run (e.g. a different seed) into this one: counters and
    /// cycles add (ratios of sums = seed-weighted means), histograms and
    /// series merge, `max_retries` takes the max. Used by the harness to
    /// average the figures over several seeds, like the paper's multiple
    /// simulation runs.
    pub fn merge(&mut self, other: &RunStats) {
        self.tx_started += other.tx_started;
        self.tx_attempts += other.tx_attempts;
        self.tx_committed += other.tx_committed;
        self.tx_aborted += other.tx_aborted;
        for i in 0..self.aborts_by_cause.len() {
            self.aborts_by_cause[i] += other.aborts_by_cause[i];
        }
        self.fallback_commits += other.fallback_commits;
        self.isolation_violations += other.isolation_violations;
        self.dirty_refetches += other.dirty_refetches;
        self.war_speculations += other.war_speculations;
        self.sig_alias_conflicts += other.sig_alias_conflicts;
        self.probes += other.probes;
        self.probe_targets += other.probe_targets;
        self.l1_hits += other.l1_hits;
        self.l1_misses += other.l1_misses;
        self.conflicts.merge(&other.conflicts);
        self.started_series.merge(&other.started_series);
        self.false_series.merge(&other.false_series);
        self.false_by_line.merge(&other.false_by_line);
        self.access_offsets.merge(&other.access_offsets);
        self.cycles += other.cycles;
        self.backoff_cycles += other.backoff_cycles;
        self.max_retries = self.max_retries.max(other.max_retries);
        for (a, b) in self.retry_histogram.iter_mut().zip(other.retry_histogram.iter()) {
            *a += b;
        }
        self.faults.merge(&other.faults);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asf_mem::addr::Addr;

    #[test]
    fn accounting_flows() {
        let mut r = RunStats::default();
        r.on_tx_start(100);
        r.on_attempt();
        r.on_abort(AbortCause::Conflict {
            kind: ConflictType::WriteAfterRead,
            is_true: false,
        });
        r.on_attempt();
        r.on_commit();
        r.on_final_retries(1);
        assert_eq!(r.retry_histogram[1], 1);
        assert_eq!(r.tx_started, 1);
        assert_eq!(r.tx_attempts, 2);
        assert_eq!(r.tx_committed, 1);
        assert_eq!(r.tx_aborted, 1);
        assert_eq!(r.false_conflict_aborts(), 1);
        assert_eq!(r.mean_attempts(), 2.0);
        assert_eq!(r.abort_ratio(), 0.5);
        assert_eq!(r.max_retries, 1);
    }

    #[test]
    fn conflicts_feed_series_and_histogram() {
        let mut r = RunStats::default();
        let line = Addr(0x1000).line();
        r.on_conflict(ConflictType::ReadAfterWrite, false, 500, line);
        r.on_conflict(ConflictType::ReadAfterWrite, true, 600, line);
        assert_eq!(r.conflicts.total(), 2);
        assert_eq!(r.conflicts.false_total(), 1);
        assert_eq!(r.false_series.total(), 1);
        assert_eq!(r.false_by_line.get(line), 1);
    }

    #[test]
    fn abort_cause_buckets() {
        let mut r = RunStats::default();
        r.on_abort(AbortCause::Capacity);
        r.on_abort(AbortCause::User);
        r.on_abort(AbortCause::Conflict { kind: ConflictType::WriteAfterWrite, is_true: true });
        r.on_abort(AbortCause::LockFallback);
        r.on_abort(AbortCause::Validation);
        assert_eq!(r.aborts_by_cause, [1, 0, 1, 1, 1, 1]);
    }

    #[test]
    fn spurious_aborts_bypass_the_paper_taxonomy() {
        let mut r = RunStats::default();
        r.on_abort(AbortCause::Spurious);
        r.on_abort(AbortCause::Spurious);
        assert_eq!(r.tx_aborted, 2);
        assert_eq!(r.aborts_by_cause, [0; 6], "injected noise leaked into the abort taxonomy");
        assert_eq!(r.faults.spurious_aborts, 2);
    }

    #[test]
    fn speedup_math() {
        let base = RunStats { cycles: 1000, ..Default::default() };
        let fast = RunStats { cycles: 700, ..Default::default() };
        assert!((fast.speedup_vs(&base) - 0.3).abs() < 1e-12);
        assert_eq!(fast.speedup_vs(&RunStats::default()), 0.0);
    }

    #[test]
    fn retry_histogram_and_mean() {
        let mut r = RunStats::default();
        r.on_final_retries(0);
        r.on_final_retries(0);
        r.on_final_retries(4);
        r.on_final_retries(99); // clamps into the last bucket
        assert_eq!(r.retry_histogram[0], 2);
        assert_eq!(r.retry_histogram[4], 1);
        assert_eq!(r.retry_histogram[15], 1);
        assert!((r.mean_retries() - (0.0 + 0.0 + 4.0 + 15.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn access_offsets_recorded() {
        let mut r = RunStats::default();
        r.on_access(8, 8);
        r.on_access(8, 8);
        r.on_access(0, 4);
        assert_eq!(r.access_offsets.bytes()[8], 2);
        assert_eq!(r.access_offsets.bytes()[0], 1);
    }
}
