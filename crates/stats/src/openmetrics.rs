//! OpenMetrics / Prometheus text exposition plus fixed-bucket log2
//! histograms (DESIGN.md §18).
//!
//! Three pieces live here:
//!
//! * [`Histogram`] — a fixed-bucket log2 latency histogram. Bucket `i`
//!   holds samples whose bit length is `i` (bucket 0 is exactly zero), so
//!   recording is one `leading_zeros` plus two adds: allocation-free and
//!   branch-light on the hot path. Quantiles are derived from cumulative
//!   bucket counts and bracket the true order statistic within one bucket.
//!   [`AtomicHistogram`] is the lock-free variant the serve layer records
//!   into from many threads at once.
//! * [`Renderer`] — builds Prometheus/OpenMetrics exposition text
//!   (`# TYPE` lines, `_total` counters, cumulative `_bucket{le=...}`
//!   series) from counters, gauges, histograms and any
//!   [`MetricsRegistry`].
//! * [`parse_exposition`] — a small validating parser for that text,
//!   shared by the test suite, the CI serve-smoke scrape and
//!   `asf-repro dash`, so "scrapes parse cleanly" is pinned by the same
//!   code everywhere.
//!
//! Everything is deliberately decoupled from the simulation: rendering
//! reads accumulated values only, so scraping a server cannot perturb a
//! run (the bit-transparency contract of DESIGN.md §13 extends here).

use crate::metrics::MetricsRegistry;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets a [`Histogram`] holds. Bucket 0 is the value 0;
/// bucket `i` (1 ≤ i < 63) covers `[2^(i-1), 2^i)`; the last bucket is
/// open-ended.
pub const LOG2_BUCKETS: usize = 40;

/// Bucket index a u64 sample lands in: its bit length, saturated to the
/// last bucket. Zero lands in bucket 0, `1` in bucket 1, `2..=3` in
/// bucket 2, and so on.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    ((64 - value.leading_zeros()) as usize).min(LOG2_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last bucket).
pub fn bucket_upper(i: usize) -> u64 {
    assert!(i < LOG2_BUCKETS, "bucket index out of range");
    if i == LOG2_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1 // i=0 → 0, i=1 → 1, i=2 → 3, ...
    }
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_lower(i: usize) -> u64 {
    assert!(i < LOG2_BUCKETS, "bucket index out of range");
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Fixed-bucket log2 histogram over u64 samples.
///
/// Recording never allocates; merging is element-wise addition, so the
/// merge of two histograms equals the histogram of the concatenated
/// samples exactly (pinned by proptest).
#[derive(Clone, Debug)]
pub struct Histogram {
    count: u64,
    sum: u64,
    buckets: [u64; LOG2_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Histogram {
        Histogram { count: 0, sum: 0, buckets: [0; LOG2_BUCKETS] }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Per-bucket counts.
    pub fn buckets(&self) -> &[u64; LOG2_BUCKETS] {
        &self.buckets
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`): the inclusive upper
    /// bound of the bucket holding the sample of rank `ceil(q·count)`.
    /// The true quantile lies in the same bucket, so the estimate
    /// brackets it within one bucket width. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(LOG2_BUCKETS - 1)
    }

    /// Median estimate (`quantile(0.5)`).
    pub fn p50(&self) -> u64 {
        self.quantile(0.5)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.9)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// Lock-free log2 histogram for concurrent recording (relaxed atomics —
/// per-bucket counts are exact, cross-field snapshots may be torn by at
/// most in-flight samples, which scraping tolerates).
#[derive(Debug)]
pub struct AtomicHistogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; LOG2_BUCKETS],
}

impl Default for AtomicHistogram {
    fn default() -> AtomicHistogram {
        AtomicHistogram::new()
    }
}

impl AtomicHistogram {
    /// Create an empty histogram.
    pub fn new() -> AtomicHistogram {
        AtomicHistogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one sample (allocation-free, three relaxed RMWs).
    #[inline]
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Copy the current contents into a plain [`Histogram`].
    pub fn snapshot(&self) -> Histogram {
        let mut h = Histogram::new();
        h.count = self.count.load(Ordering::Relaxed);
        h.sum = self.sum.load(Ordering::Relaxed);
        for (b, a) in h.buckets.iter_mut().zip(self.buckets.iter()) {
            *b = a.load(Ordering::Relaxed);
        }
        h
    }
}

/// Sanitise a metric name into the Prometheus charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): anything else becomes `_`.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic()
            || c == '_'
            || c == ':'
            || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape a label value per the exposition format: backslash, double
/// quote and newline.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn label_block(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}=\"{}\"", sanitize_name(k), escape_label(v));
    }
    out.push('}');
    out
}

/// Builds Prometheus/OpenMetrics exposition text.
///
/// Families are emitted in call order; each `# TYPE` line is written once
/// per family even when samples are added across multiple calls.
#[derive(Debug, Default)]
pub struct Renderer {
    out: String,
    typed: Vec<String>,
}

impl Renderer {
    /// Start an empty exposition.
    pub fn new() -> Renderer {
        Renderer::default()
    }

    fn type_line(&mut self, name: &str, kind: &str, help: &str) {
        if self.typed.iter().any(|n| n == name) {
            return;
        }
        self.typed.push(name.to_string());
        if !help.is_empty() {
            let _ = writeln!(self.out, "# HELP {} {}", name, help.replace('\n', " "));
        }
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Emit a monotonic counter sample; `_total` is appended to the name.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        let base = sanitize_name(name);
        self.type_line(&base, "counter", help);
        let _ = writeln!(self.out, "{}_total{} {}", base, label_block(labels), value);
    }

    /// Emit a gauge sample (current value, may go down).
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        let base = sanitize_name(name);
        self.type_line(&base, "gauge", help);
        let _ = writeln!(self.out, "{}{} {}", base, label_block(labels), fmt_f64(value));
    }

    /// Emit a histogram family: cumulative `_bucket{le=...}` series plus
    /// `_sum` and `_count`.
    pub fn histogram(&mut self, name: &str, help: &str, labels: &[(&str, &str)], h: &Histogram) {
        let base = sanitize_name(name);
        self.type_line(&base, "histogram", help);
        let mut cum = 0u64;
        for (i, b) in h.buckets().iter().enumerate() {
            cum += b;
            if *b == 0 && i != LOG2_BUCKETS - 1 {
                continue; // keep the exposition compact: only non-empty + +Inf
            }
            let mut ls: Vec<(&str, String)> =
                labels.iter().map(|(k, v)| (*k, (*v).to_string())).collect();
            let le = if i == LOG2_BUCKETS - 1 {
                "+Inf".to_string()
            } else {
                bucket_upper(i).to_string()
            };
            ls.push(("le", le));
            let borrowed: Vec<(&str, &str)> =
                ls.iter().map(|(k, v)| (*k, v.as_str())).collect();
            let _ = writeln!(self.out, "{}_bucket{} {}", base, label_block(&borrowed), cum);
        }
        let lb = label_block(labels);
        let _ = writeln!(self.out, "{}_sum{} {}", base, lb, h.sum());
        let _ = writeln!(self.out, "{}_count{} {}", base, lb, h.count());
    }

    /// Render every counter and interval gauge of a [`MetricsRegistry`]
    /// under a shared family per kind, with the registry's dotted metric
    /// name carried as a `name` label (arbitrary names stay intact
    /// through label escaping instead of being mangled into the metric
    /// name).
    pub fn registry(&mut self, prefix: &str, reg: &MetricsRegistry) {
        let counter_family = format!("{prefix}_counter");
        for (name, value) in reg.counters() {
            self.counter(
                &counter_family,
                "simulator counters from the MetricsRegistry",
                &[("name", name)],
                value,
            );
        }
        let gauge_family = format!("{prefix}_interval_events");
        for (name, width, buckets) in reg.intervals() {
            let total: u64 = buckets.iter().sum();
            let w = width.to_string();
            self.counter(
                &gauge_family,
                "events accumulated by cycle-bucketed interval gauges",
                &[("name", name), ("width_cycles", &w)],
                total,
            );
        }
    }

    /// Finish and return the exposition text (ends with `# EOF`).
    pub fn finish(mut self) -> String {
        self.out.push_str("# EOF\n");
        self.out
    }
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// One sample line of a parsed exposition.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Full sample name (including `_total` / `_bucket` suffixes).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// Parsed value.
    pub value: f64,
}

/// A parsed exposition: `# TYPE` declarations plus all samples.
#[derive(Clone, Debug, Default)]
pub struct Exposition {
    /// `(family name, kind)` pairs from `# TYPE` lines, in order.
    pub types: Vec<(String, String)>,
    /// All sample lines, in order.
    pub samples: Vec<Sample>,
}

impl Exposition {
    /// Kind declared for a family, if any.
    pub fn kind(&self, family: &str) -> Option<&str> {
        self.types.iter().find(|(n, _)| n == family).map(|(_, k)| k.as_str())
    }

    /// First sample value whose name matches exactly and whose labels
    /// include every pair in `labels`.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| {
                s.name == name
                    && labels.iter().all(|(k, v)| {
                        s.labels.iter().any(|(sk, sv)| sk == k && sv == v)
                    })
            })
            .map(|s| s.value)
    }

    /// Sum of all sample values with this exact name.
    pub fn sum(&self, name: &str) -> f64 {
        self.samples.iter().filter(|s| s.name == name).map(|s| s.value).sum()
    }
}

fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

fn parse_labels(src: &str, lineno: usize) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = src.chars().peekable();
    loop {
        // label name
        let mut name = String::new();
        while let Some(&c) = chars.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                name.push(c);
                chars.next();
            } else {
                break;
            }
        }
        if !valid_name(&name) {
            return Err(format!("line {lineno}: bad label name {name:?}"));
        }
        if chars.next() != Some('=') || chars.next() != Some('"') {
            return Err(format!("line {lineno}: expected =\" after label name"));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    _ => return Err(format!("line {lineno}: bad escape in label value")),
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => return Err(format!("line {lineno}: unterminated label value")),
            }
        }
        labels.push((name, value));
        match chars.next() {
            Some(',') => continue,
            None => break,
            Some(c) => return Err(format!("line {lineno}: unexpected {c:?} after label")),
        }
    }
    Ok(labels)
}

/// Parse and validate exposition text.
///
/// Checks the properties the format requires: sample and family names in
/// the legal charset, label values correctly quoted/escaped, values that
/// parse as floats (`+Inf` allowed), and every sample preceded by a
/// `# TYPE` declaration for its family.
pub fn parse_exposition(text: &str) -> Result<Exposition, String> {
    let mut exp = Exposition::default();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(t) = rest.strip_prefix("TYPE ") {
                let mut parts = t.split_whitespace();
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                if !valid_name(name) {
                    return Err(format!("line {lineno}: bad family name {name:?}"));
                }
                if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                    return Err(format!("line {lineno}: bad metric kind {kind:?}"));
                }
                if exp.types.iter().any(|(n, _)| n == name) {
                    return Err(format!("line {lineno}: duplicate TYPE for {name}"));
                }
                exp.types.push((name.to_string(), kind.to_string()));
            }
            continue; // HELP / EOF / other comments
        }
        // sample line: name[{labels}] value
        let (name_part, rest) = match line.find(['{', ' ']) {
            Some(pos) => (&line[..pos], &line[pos..]),
            None => return Err(format!("line {lineno}: sample has no value")),
        };
        if !valid_name(name_part) {
            return Err(format!("line {lineno}: bad sample name {name_part:?}"));
        }
        let (labels, value_part) = if let Some(inner) = rest.strip_prefix('{') {
            let close = inner
                .rfind('}')
                .ok_or_else(|| format!("line {lineno}: unterminated label block"))?;
            (parse_labels(&inner[..close], lineno)?, &inner[close + 1..])
        } else {
            (Vec::new(), rest)
        };
        let value_str = value_part.trim();
        let value = match value_str {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v
                .parse::<f64>()
                .map_err(|_| format!("line {lineno}: bad value {v:?}"))?,
        };
        let family = family_of(name_part);
        if !exp.types.iter().any(|(n, _)| n == &family || n == name_part) {
            return Err(format!("line {lineno}: sample {name_part} has no TYPE declaration"));
        }
        exp.samples.push(Sample {
            name: name_part.to_string(),
            labels,
            value,
        });
    }
    Ok(exp)
}

/// Strip the exposition suffixes (`_total`, `_bucket`, `_sum`, `_count`)
/// to recover the family a sample belongs to.
pub fn family_of(sample_name: &str) -> String {
    for suffix in ["_total", "_bucket", "_sum", "_count"] {
        if let Some(base) = sample_name.strip_suffix(suffix) {
            if !base.is_empty() {
                return base.to_string();
            }
        }
    }
    sample_name.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_line() {
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            let i = bucket_index(v);
            assert!(bucket_lower(i) <= v && v <= bucket_upper(i), "v={v} bucket={i}");
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
    }

    #[test]
    fn histogram_records_and_quantiles() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        let p50 = h.p50();
        assert!((32..=63).contains(&p50), "p50 bucket upper = {p50}");
        let p99 = h.p99();
        assert!((64..=127).contains(&p99), "p99 bucket upper = {p99}");
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn merge_equals_concat() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [0u64, 5, 17, 1000, u64::MAX] {
            a.record(v);
            all.record(v);
        }
        for v in [3u64, 5, 900_000] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum(), all.sum());
        assert_eq!(a.buckets(), all.buckets());
    }

    #[test]
    fn atomic_histogram_snapshot_matches() {
        let a = AtomicHistogram::new();
        a.record(7);
        a.record(12345);
        let s = a.snapshot();
        assert_eq!(s.count(), 2);
        assert_eq!(s.sum(), 12352);
    }

    #[test]
    fn renderer_output_parses() {
        let mut r = Renderer::new();
        r.counter("asf_http_requests", "requests", &[("endpoint", "submit"), ("status", "202")], 7);
        r.counter("asf_http_requests", "", &[("endpoint", "healthz"), ("status", "200")], 3);
        r.gauge("asf_queue_depth", "jobs queued", &[], 2.0);
        let mut h = Histogram::new();
        h.record(100);
        h.record(90_000);
        r.histogram("asf_job_e2e_ns", "end to end", &[], &h);
        let text = r.finish();
        let exp = parse_exposition(&text).expect("renderer output parses");
        assert_eq!(exp.kind("asf_http_requests"), Some("counter"));
        assert_eq!(exp.kind("asf_job_e2e_ns"), Some("histogram"));
        assert_eq!(
            exp.value("asf_http_requests_total", &[("endpoint", "submit")]),
            Some(7.0)
        );
        assert_eq!(exp.value("asf_job_e2e_ns_count", &[]), Some(2.0));
        // +Inf bucket carries the total count.
        assert_eq!(exp.value("asf_job_e2e_ns_bucket", &[("le", "+Inf")]), Some(2.0));
    }

    #[test]
    fn label_escaping_round_trips() {
        let mut r = Renderer::new();
        r.counter("asf_weird", "", &[("name", "a\"b\\c\nd")], 1);
        let text = r.finish();
        let exp = parse_exposition(&text).expect("escaped labels parse");
        assert_eq!(exp.value("asf_weird_total", &[("name", "a\"b\\c\nd")]), Some(1.0));
    }

    #[test]
    fn registry_renders_under_shared_families() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("tx.commits");
        reg.add(c, 9);
        let g = reg.interval("conflicts.per_interval", 100);
        reg.bump(g, 50);
        reg.bump(g, 150);
        let mut r = Renderer::new();
        r.registry("asf_sim", &reg);
        let exp = parse_exposition(&r.finish()).expect("registry exposition parses");
        assert_eq!(exp.value("asf_sim_counter_total", &[("name", "tx.commits")]), Some(9.0));
        assert_eq!(
            exp.value("asf_sim_interval_events_total", &[("name", "conflicts.per_interval")]),
            Some(2.0)
        );
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_exposition("bad name 1\n").is_err());
        assert!(parse_exposition("# TYPE x counter\nx_total{le=\"unterminated} 1\n").is_err());
        assert!(parse_exposition("# TYPE x counter\nx_total notanumber\n").is_err());
        assert!(parse_exposition("orphan_total 3\n").is_err(), "samples need a TYPE line");
        assert!(parse_exposition("# TYPE 9bad counter\n").is_err());
    }

    #[test]
    fn sanitize_and_family() {
        assert_eq!(sanitize_name("tx.commits"), "tx_commits");
        assert_eq!(sanitize_name("9lives"), "_lives");
        assert_eq!(family_of("asf_http_requests_total"), "asf_http_requests");
        assert_eq!(family_of("asf_job_e2e_ns_bucket"), "asf_job_e2e_ns");
        assert_eq!(family_of("plain_gauge"), "plain_gauge");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every u64 sample lands in exactly one bucket: its index's
        /// `[lower, upper]` range contains it, and no other bucket's does.
        #[test]
        fn every_sample_lands_in_exactly_one_bucket(v in any::<u64>()) {
            let i = bucket_index(v);
            prop_assert!(bucket_lower(i) <= v && v <= bucket_upper(i));
            let homes = (0..LOG2_BUCKETS)
                .filter(|&j| bucket_lower(j) <= v && v <= bucket_upper(j))
                .count();
            prop_assert_eq!(homes, 1);
        }

        /// Bucket ranges tile the u64 line with no gaps or overlaps.
        #[test]
        fn bucket_boundaries_are_contiguous(i in 0usize..LOG2_BUCKETS - 1) {
            prop_assert_eq!(bucket_upper(i) + 1, bucket_lower(i + 1));
        }

        /// Merging two histograms equals the histogram of the
        /// concatenated samples — count, sum, and every bucket.
        #[test]
        fn merge_equals_histogram_of_concatenation(
            a in prop::collection::vec(any::<u64>(), 0..200),
            b in prop::collection::vec(any::<u64>(), 0..200),
        ) {
            let mut ha = Histogram::new();
            for &v in &a {
                ha.record(v);
            }
            let mut hb = Histogram::new();
            for &v in &b {
                hb.record(v);
            }
            let mut merged = ha.clone();
            merged.merge(&hb);

            let mut concat = Histogram::new();
            for &v in a.iter().chain(b.iter()) {
                concat.record(v);
            }
            prop_assert_eq!(merged.count(), concat.count());
            prop_assert_eq!(merged.sum(), concat.sum());
            prop_assert_eq!(merged.buckets(), concat.buckets());
        }

        /// The quantile estimate brackets the true quantile within one
        /// bucket: the rank-`ceil(q·n)` order statistic lies in the same
        /// bucket whose upper bound the estimate reports.
        #[test]
        fn quantile_brackets_true_quantile_within_one_bucket(
            mut samples in prop::collection::vec(0u64..1u64 << 40, 1..300),
            q_permille in 0u32..=1000,
        ) {
            let q = f64::from(q_permille) / 1000.0;
            let mut h = Histogram::new();
            for &v in &samples {
                h.record(v);
            }
            samples.sort_unstable();
            let rank = ((q * samples.len() as f64).ceil() as usize)
                .clamp(1, samples.len());
            let truth = samples[rank - 1];
            let estimate = h.quantile(q);
            let i = bucket_index(truth);
            prop_assert_eq!(estimate, bucket_upper(i));
            prop_assert!(bucket_lower(i) <= truth && truth <= estimate);
        }
    }
}
