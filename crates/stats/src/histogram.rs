//! Spatial histograms (Figures 4 and 5).

use asf_mem::addr::{LineAddr, LINE_SIZE};
use asf_mem::mask::AccessMask;
use std::collections::HashMap;

/// False-conflict counts keyed by cache-line index (Figure 4).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LineHistogram {
    counts: HashMap<u64, u64>,
}

impl LineHistogram {
    /// Record `n` events on `line`.
    pub fn add(&mut self, line: LineAddr, n: u64) {
        *self.counts.entry(line.index()).or_insert(0) += n;
    }

    /// Number of distinct lines with at least one event.
    pub fn distinct_lines(&self) -> usize {
        self.counts.len()
    }

    /// Total events.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Events recorded on `line`.
    pub fn get(&self, line: LineAddr) -> u64 {
        self.counts.get(&line.index()).copied().unwrap_or(0)
    }

    /// `(line index, count)` pairs sorted by line index.
    pub fn sorted(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<_> = self.counts.iter().map(|(&k, &c)| (k, c)).collect();
        v.sort_unstable();
        v
    }

    /// The `k` hottest lines, by descending count (ties by index).
    pub fn hottest(&self, k: usize) -> Vec<(u64, u64)> {
        let mut v: Vec<_> = self.counts.iter().map(|(&i, &c)| (i, c)).collect();
        v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Fraction of all events carried by the `k` hottest lines — the
    /// "kmeans concentration" metric (Figure 4's qualitative contrast).
    pub fn concentration(&self, k: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let top: u64 = self.hottest(k).iter().map(|&(_, c)| c).sum();
        top as f64 / total as f64
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LineHistogram) {
        for (&k, &c) in &other.counts {
            *self.counts.entry(k).or_insert(0) += c;
        }
    }

    /// Rebuild a histogram from `(line index, count)` pairs — the inverse
    /// of [`LineHistogram::sorted`] for checkpoint deserialisation.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u64, u64)>) -> LineHistogram {
        let mut h = LineHistogram::default();
        for (idx, c) in pairs {
            *h.counts.entry(idx).or_insert(0) += c;
        }
        h
    }
}

/// Per-byte access counts within cache lines (Figure 5). The paper plots at
/// the benchmark's natural word size; [`OffsetHistogram::bucketed`] rebins to
/// any power-of-two word.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OffsetHistogram {
    counts: [u64; LINE_SIZE],
}

impl Default for OffsetHistogram {
    fn default() -> Self {
        OffsetHistogram { counts: [0; LINE_SIZE] }
    }
}

impl OffsetHistogram {
    /// Record one access covering `mask` (every covered byte gets +1).
    pub fn add(&mut self, mask: AccessMask) {
        for off in mask.iter_offsets() {
            self.counts[off] += 1;
        }
    }

    /// Record one access starting at `offset` of `len` bytes, counted once
    /// per *location* (the paper counts accesses per location, i.e. the
    /// starting word), at byte resolution here.
    pub fn add_location(&mut self, offset: usize, _len: usize) {
        self.counts[offset] += 1;
    }

    /// Raw per-byte counts.
    pub fn bytes(&self) -> &[u64; LINE_SIZE] {
        &self.counts
    }

    /// Total recorded events.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Rebin into `LINE_SIZE / word` buckets of `word` bytes each
    /// (word ∈ {1,2,4,8,16,32,64}).
    pub fn bucketed(&self, word: usize) -> Vec<u64> {
        assert!(word.is_power_of_two() && (1..=LINE_SIZE).contains(&word));
        self.counts
            .chunks_exact(word)
            .map(|c| c.iter().sum())
            .collect()
    }

    /// Number of distinct non-empty buckets at the given word size — the
    /// "scatter" metric: a regularly scattered pattern (Figure 5) touches
    /// many buckets.
    pub fn occupied_buckets(&self, word: usize) -> usize {
        self.bucketed(word).iter().filter(|&&c| c > 0).count()
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &OffsetHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// Rebuild from raw per-byte counts — the inverse of
    /// [`OffsetHistogram::bytes`] for checkpoint deserialisation.
    pub fn from_bytes(counts: [u64; LINE_SIZE]) -> OffsetHistogram {
        OffsetHistogram { counts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asf_mem::addr::Addr;

    fn line(n: u64) -> LineAddr {
        Addr(n * 64).line()
    }

    #[test]
    fn line_histogram_counts() {
        let mut h = LineHistogram::default();
        h.add(line(3), 2);
        h.add(line(3), 1);
        h.add(line(9), 5);
        assert_eq!(h.get(line(3)), 3);
        assert_eq!(h.get(line(9)), 5);
        assert_eq!(h.get(line(1)), 0);
        assert_eq!(h.total(), 8);
        assert_eq!(h.distinct_lines(), 2);
        assert_eq!(h.sorted(), vec![(3, 3), (9, 5)]);
    }

    #[test]
    fn hottest_and_concentration() {
        let mut h = LineHistogram::default();
        h.add(line(1), 90);
        h.add(line(2), 5);
        h.add(line(3), 5);
        assert_eq!(h.hottest(1), vec![(1, 90)]);
        assert!((h.concentration(1) - 0.9).abs() < 1e-12);
        assert!((h.concentration(3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_line_histograms() {
        let mut a = LineHistogram::default();
        a.add(line(1), 1);
        let mut b = LineHistogram::default();
        b.add(line(1), 2);
        b.add(line(2), 3);
        a.merge(&b);
        assert_eq!(a.get(line(1)), 3);
        assert_eq!(a.get(line(2)), 3);
    }

    #[test]
    fn offset_histogram_masks() {
        let mut h = OffsetHistogram::default();
        h.add(AccessMask::from_range(0, 4));
        h.add(AccessMask::from_range(0, 4));
        h.add(AccessMask::from_range(8, 8));
        assert_eq!(h.bytes()[0], 2);
        assert_eq!(h.bytes()[3], 2);
        assert_eq!(h.bytes()[8], 1);
        assert_eq!(h.bytes()[16], 0);
        assert_eq!(h.total(), 2 * 4 + 8);
    }

    #[test]
    fn bucketing() {
        let mut h = OffsetHistogram::default();
        h.add(AccessMask::from_range(0, 8));
        h.add(AccessMask::from_range(60, 4));
        let b8 = h.bucketed(8);
        assert_eq!(b8.len(), 8);
        assert_eq!(b8[0], 8);
        assert_eq!(b8[7], 4);
        assert_eq!(h.occupied_buckets(8), 2);
        assert_eq!(h.occupied_buckets(64), 1);
        let b4 = h.bucketed(4);
        assert_eq!(b4.len(), 16);
        assert_eq!(b4[0], 4);
        assert_eq!(b4[1], 4);
        assert_eq!(b4[15], 4);
    }

    #[test]
    fn add_location_counts_once() {
        let mut h = OffsetHistogram::default();
        h.add_location(8, 8);
        h.add_location(8, 8);
        assert_eq!(h.bytes()[8], 2);
        assert_eq!(h.bytes()[9], 0);
        assert_eq!(h.total(), 2);
    }
}
