//! Injected-fault accounting (the robustness layer's `FaultStats` block).
//!
//! Every fault the simulator's deterministic fault-injection layer fires
//! is counted here, separately from the paper's abort taxonomy: injected
//! faults are *adversarial noise*, not workload behaviour, so they must
//! never pollute `aborts_by_cause`, the conflict breakdown, or any figure
//! the paper reproduces. A zero `FaultStats` block is the witness that a
//! run executed with the fault layer disabled.

/// Counters for every fault injected during one run. All zero when fault
/// injection is disabled.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FaultStats {
    /// Aborts with cause [`crate::run::AbortCause::Spurious`] — however the
    /// spurious abort was delivered (at an op, or as a false probe hit).
    pub spurious_aborts: u64,
    /// Spurious aborts injected directly at a transactional operation
    /// (models ASF's "transient abort" class: interrupts, TLB misses …).
    pub spurious_op_aborts: u64,
    /// False probe conflicts injected at probe time against a victim that
    /// had no real conflict (models transient coherence glitches).
    pub false_probe_conflicts: u64,
    /// Capacity-pressure spike windows opened (temporary way pinning).
    pub capacity_spikes: u64,
    /// Transactional fills refused because a capacity spike pinned the L1
    /// (each becomes an ordinary `AbortCause::Capacity` abort).
    pub capacity_spike_aborts: u64,
    /// Probes whose response was artificially delayed.
    pub delayed_probes: u64,
    /// Total extra cycles injected by delayed probe responses.
    pub delay_cycles: u64,
}

impl FaultStats {
    /// Total faults injected, of every kind.
    pub fn injected_total(&self) -> u64 {
        self.spurious_op_aborts
            + self.false_probe_conflicts
            + self.capacity_spikes
            + self.capacity_spike_aborts
            + self.delayed_probes
    }

    /// True when no fault was injected (the disabled-layer witness).
    pub fn is_zero(&self) -> bool {
        *self == FaultStats::default()
    }

    /// Fold another run's fault counters into this one.
    pub fn merge(&mut self, other: &FaultStats) {
        self.spurious_aborts += other.spurious_aborts;
        self.spurious_op_aborts += other.spurious_op_aborts;
        self.false_probe_conflicts += other.false_probe_conflicts;
        self.capacity_spikes += other.capacity_spikes;
        self.capacity_spike_aborts += other.capacity_spike_aborts;
        self.delayed_probes += other.delayed_probes;
        self.delay_cycles += other.delay_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_by_default() {
        let f = FaultStats::default();
        assert!(f.is_zero());
        assert_eq!(f.injected_total(), 0);
    }

    #[test]
    fn merge_adds() {
        let mut a = FaultStats { spurious_aborts: 1, delayed_probes: 2, ..Default::default() };
        let b = FaultStats { spurious_aborts: 3, delay_cycles: 40, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.spurious_aborts, 4);
        assert_eq!(a.delayed_probes, 2);
        assert_eq!(a.delay_cycles, 40);
        assert!(!a.is_zero());
    }
}
