//! Streaming writer for the Chrome `trace_event` JSON format.
//!
//! Emits the "JSON Array Format" understood by `chrome://tracing` and
//! Perfetto (<https://ui.perfetto.dev> → "Open trace file"): a flat array of
//! event objects, one per line. The writer is format-only — it knows nothing
//! about the simulator; callers map their domain events onto duration (`X`),
//! instant (`i`) and metadata (`M`) phases. Timestamps are microseconds in
//! the trace-viewer UI; the simulator maps cycles to microseconds 1:1.
//!
//! Events stream straight into an in-memory buffer as they are recorded, so
//! unlike a ring buffer nothing is dropped and memory scales with the events
//! actually emitted.

use crate::json::escape;
use std::fmt::Write as _;

/// One `"args"` entry: a key plus a pre-rendered JSON value.
///
/// The value string is spliced into the output verbatim, so it must already
/// be valid JSON — use [`arg_str`] for string values, plain
/// `value.to_string()` for numbers and booleans.
pub type Arg<'a> = (&'a str, String);

/// Render a Rust string as a quoted, escaped JSON string value for [`Arg`].
pub fn arg_str(s: &str) -> String {
    escape(s)
}

/// An incremental Chrome `trace_event` JSON writer.
#[derive(Clone, Debug)]
pub struct ChromeTraceWriter {
    buf: String,
    events: u64,
}

impl Default for ChromeTraceWriter {
    fn default() -> Self {
        ChromeTraceWriter::new()
    }
}

impl ChromeTraceWriter {
    /// Start a new trace (opens the JSON array).
    pub fn new() -> ChromeTraceWriter {
        ChromeTraceWriter { buf: String::from("[\n"), events: 0 }
    }

    fn begin_event(&mut self) {
        if self.events > 0 {
            self.buf.push_str(",\n");
        }
        self.events += 1;
    }

    fn push_args(&mut self, args: &[Arg<'_>]) {
        if args.is_empty() {
            return;
        }
        self.buf.push_str(r#","args":{"#);
        for (i, (k, v)) in args.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            let _ = write!(self.buf, "{}:{}", escape(k), v);
        }
        self.buf.push('}');
    }

    /// Emit a complete (duration) event: `ph:"X"` spanning `[ts, ts+dur)` on
    /// track `tid`.
    pub fn complete(&mut self, name: &str, tid: u64, ts: u64, dur: u64, args: &[Arg<'_>]) {
        self.begin_event();
        let _ = write!(
            self.buf,
            r#"  {{"name":{},"ph":"X","ts":{ts},"dur":{dur},"pid":1,"tid":{tid}"#,
            escape(name)
        );
        self.push_args(args);
        self.buf.push('}');
    }

    /// Emit an instant event (`ph:"i"`) at `ts` on track `tid`.
    /// `scope` is the trace-viewer scope: `"t"` (thread), `"p"` (process)
    /// or `"g"` (global).
    pub fn instant(&mut self, name: &str, tid: u64, ts: u64, scope: char, args: &[Arg<'_>]) {
        self.begin_event();
        let _ = write!(
            self.buf,
            r#"  {{"name":{},"ph":"i","ts":{ts},"pid":1,"tid":{tid},"s":"{scope}""#,
            escape(name)
        );
        self.push_args(args);
        self.buf.push('}');
    }

    /// Emit a `thread_name` metadata event so the viewer labels track `tid`.
    pub fn thread_name(&mut self, tid: u64, name: &str) {
        self.begin_event();
        let _ = write!(
            self.buf,
            r#"  {{"name":"thread_name","ph":"M","pid":1,"tid":{tid},"args":{{"name":{}}}}}"#,
            escape(name)
        );
    }

    /// Number of events emitted so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Close the array and return the finished JSON document.
    pub fn finish(mut self) -> String {
        self.buf.push_str("\n]\n");
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn writes_parseable_event_array() {
        let mut w = ChromeTraceWriter::new();
        w.thread_name(0, "core 0");
        w.complete("transaction", 0, 10, 40, &[("retry", "1".into())]);
        w.instant("probe-rd", 0, 12, 't', &[("line", arg_str("0x40"))]);
        assert_eq!(w.events(), 3);
        let json = w.finish();
        let v = parse(&json).expect("chrome JSON parses");
        let arr = v.as_arr().expect("top level is an array");
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].field("ph").unwrap().as_str().unwrap(), "X");
        assert_eq!(arr[1].field("dur").unwrap().as_u64().unwrap(), 40);
        assert_eq!(
            arr[2].field("args").unwrap().field("line").unwrap().as_str().unwrap(),
            "0x40"
        );
    }

    #[test]
    fn empty_trace_is_valid_json() {
        let json = ChromeTraceWriter::new().finish();
        let v = parse(&json).expect("empty trace parses");
        assert_eq!(v.as_arr().map(<[_]>::len), Ok(0));
    }

    #[test]
    fn names_are_escaped() {
        let mut w = ChromeTraceWriter::new();
        w.instant("odd\"name", 3, 1, 'g', &[]);
        let json = w.finish();
        assert!(json.contains(r#""name":"odd\"name""#));
        assert!(parse(&json).is_ok());
    }
}
