//! Content digests: the FNV-1a fold behind the golden-stats fence and the
//! serve layer's content-addressed result cache.
//!
//! Two consumers share this module so they can never drift apart:
//!
//! * `tests/golden_stats.rs` pins [`run_stats_digest`] values of a fixed
//!   cell set — the "bit-identical before/after" bar for perf refactors;
//! * `asf-serve` keys its result cache by an [`Fnv`] digest of a canonical
//!   job-spec serialisation, and stamps every served artifact with the
//!   [`run_stats_digest`] of the stats it carries, so a served result can
//!   be checked against a direct `Machine::run` of the same spec.
//!
//! The fold is plain FNV-1a over little-endian `u64` words. It is not
//! cryptographic — it only needs to make accidental collisions and silent
//! drift overwhelmingly unlikely, and to be dependency-free and stable
//! across platforms.

use crate::run::RunStats;

/// Incremental FNV-1a hasher over bytes and little-endian `u64` words.
#[derive(Clone, Debug)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv {
        Fnv(Self::OFFSET)
    }

    /// Fold raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        self
    }

    /// Fold one `u64` as its eight little-endian bytes.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Fold a string's UTF-8 bytes.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.bytes(s.as_bytes())
    }

    /// The digest accumulated so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot digest of a byte string (what the serve cache keys specs by).
pub fn bytes_digest(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.bytes(bytes);
    h.finish()
}

/// FNV-1a over a canonical serialisation of every [`RunStats`] field,
/// including full histogram and time-series contents. Two stats with the
/// same digest are, for all practical purposes, bit-identical.
///
/// The fold order is load-bearing: `tests/golden_stats.rs` pins digests
/// produced by exactly this sequence, so any edit here is a re-baselining
/// event, not a refactor.
pub fn run_stats_digest(s: &RunStats) -> u64 {
    let mut h = Fnv::new();
    let mut fold = |v: u64| {
        h.u64(v);
    };
    fold(s.tx_started);
    fold(s.tx_attempts);
    fold(s.tx_committed);
    fold(s.tx_aborted);
    s.aborts_by_cause.iter().for_each(|&v| fold(v));
    fold(s.fallback_commits);
    fold(s.isolation_violations);
    fold(s.dirty_refetches);
    fold(s.war_speculations);
    fold(s.sig_alias_conflicts);
    fold(s.probes);
    fold(s.probe_targets);
    fold(s.l1_hits);
    fold(s.l1_misses);
    s.conflicts.true_by_type.iter().for_each(|&v| fold(v));
    s.conflicts.false_by_type.iter().for_each(|&v| fold(v));
    // Time series: totals plus the full cumulative curve (order-insensitive
    // but content-exact — merge order of equal stamps doesn't matter).
    let horizon = s.cycles;
    for series in [&s.started_series, &s.false_series] {
        fold(series.total());
        fold(series.last_cycle());
        series.cumulative(horizon.max(1), 64).iter().for_each(|&v| fold(v));
    }
    for (line, count) in s.false_by_line.sorted() {
        fold(line);
        fold(count);
    }
    s.access_offsets.bytes().iter().for_each(|&v| fold(v));
    fold(s.cycles);
    fold(s.backoff_cycles);
    fold(s.max_retries as u64);
    s.retry_histogram.iter().for_each(|&v| fold(v));
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // FNV-1a("") = offset basis; FNV-1a("a") = 0xaf63dc4c8601ec8c.
        assert_eq!(Fnv::new().finish(), 0xcbf2_9ce4_8422_2325);
        assert_eq!(bytes_digest(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(bytes_digest(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn word_fold_is_byte_fold() {
        let mut words = Fnv::new();
        words.u64(0x0102_0304_0506_0708);
        let mut bytes = Fnv::new();
        bytes.bytes(&[0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01]);
        assert_eq!(words.finish(), bytes.finish());
    }

    #[test]
    fn run_stats_digest_separates_fields() {
        let base = RunStats::default();
        let started = RunStats { tx_started: 1, ..Default::default() };
        let cycles = RunStats { cycles: 1, ..Default::default() };
        let d = run_stats_digest(&base);
        assert_ne!(d, run_stats_digest(&started));
        assert_ne!(d, run_stats_digest(&cycles));
        assert_ne!(run_stats_digest(&started), run_stats_digest(&cycles));
        // Deterministic across calls.
        assert_eq!(d, run_stats_digest(&RunStats::default()));
    }
}
