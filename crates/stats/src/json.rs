//! Minimal JSON reading/writing for checkpoint files.
//!
//! The repo's dependency policy rules out serde, and the existing
//! hand-rolled emitters ([`crate::table::Table::to_json`], the harness
//! perf report) only *write*. Crash-safe matrix checkpoints need the
//! reverse direction too: a [`crate::run::RunStats`] must survive a
//! JSON round-trip *exactly* (`from_json(to_json(s)) == s`), down to
//! time-series stamp order, so that a `--resume`d matrix is bit-identical
//! to a fresh one. Everything serialised here is a `u64`, so the parser
//! keeps integers exact instead of routing them through `f64`.

use crate::conflict::ConflictStats;
use crate::fault::FaultStats;
use crate::histogram::{LineHistogram, OffsetHistogram};
use crate::run::RunStats;
use crate::series::TimeSeries;
use asf_mem::addr::LINE_SIZE;

/// A parsed JSON value. Objects preserve key order; integers that fit a
/// `u64` stay exact.
#[derive(Clone, PartialEq, Debug)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal that fits `u64` (kept exact).
    Int(u64),
    /// Any other number (negative, fractional, exponent).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, as key/value pairs in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required object member, as a descriptive error when missing.
    pub fn field(&self, key: &str) -> Result<&JsonValue, String> {
        self.get(key).ok_or_else(|| format!("missing field {key:?}"))
    }

    /// The value as an exact `u64`.
    pub fn as_u64(&self) -> Result<u64, String> {
        match self {
            JsonValue::Int(n) => Ok(*n),
            other => Err(format!("expected integer, got {other:?}")),
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Result<&[JsonValue], String> {
        match self {
            JsonValue::Arr(v) => Ok(v),
            other => Err(format!("expected array, got {other:?}")),
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Result<&str, String> {
        match self {
            JsonValue::Str(s) => Ok(s),
            other => Err(format!("expected string, got {other:?}")),
        }
    }

    /// An array of integers as `Vec<u64>`.
    pub fn as_u64_vec(&self) -> Result<Vec<u64>, String> {
        self.as_arr()?.iter().map(JsonValue::as_u64).collect()
    }
}

/// Parse a JSON document (the subset emitted by this repo: no `\u` escapes
/// beyond what [`escape`] produces is required, but standard `\uXXXX` is
/// accepted for BMP code points).
pub fn parse(src: &str) -> Result<JsonValue, String> {
    let mut p = Parser { b: src.as_bytes(), i: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.i))
        }
    }

    fn lit(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.lit("false", JsonValue::Bool(false)),
            Some(b'n') => self.lit("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.i)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((k, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                other => return Err(format!("expected , or }} got {other:?} at byte {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(JsonValue::Arr(items));
                }
                other => return Err(format!("expected , or ] got {other:?} at byte {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.i += 4;
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (the input is a &str, so byte
                    // boundaries are valid).
                    let start = self.i;
                    self.i += 1;
                    while self.i < self.b.len() && (self.b[self.i] & 0xC0) == 0x80 {
                        self.i += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.b[start..self.i]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
        let int_end = self.i;
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.i += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        if !float && start < int_end && self.b[start] != b'-' {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(JsonValue::Int(n));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

/// Escape a string for embedding in a JSON document (with quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn u64_list(v: &[u64]) -> String {
    let items: Vec<String> = v.iter().map(u64::to_string).collect();
    format!("[{}]", items.join(","))
}

impl RunStats {
    /// Serialise every field to JSON. Exact: see [`RunStats::from_json`].
    pub fn to_json(&self) -> String {
        let pairs: String = self
            .false_by_line
            .sorted()
            .iter()
            .map(|&(i, c)| format!("[{i},{c}]"))
            .collect::<Vec<_>>()
            .join(",");
        let f = &self.faults;
        format!(
            concat!(
                "{{\"tx_started\":{},\"tx_attempts\":{},\"tx_committed\":{},",
                "\"tx_aborted\":{},\"aborts_by_cause\":{},\"fallback_commits\":{},",
                "\"isolation_violations\":{},\"dirty_refetches\":{},",
                "\"war_speculations\":{},\"sig_alias_conflicts\":{},",
                "\"probes\":{},\"probe_targets\":{},\"l1_hits\":{},\"l1_misses\":{},",
                "\"conflicts\":{{\"true_by_type\":{},\"false_by_type\":{}}},",
                "\"started_series\":{},\"false_series\":{},",
                "\"false_by_line\":[{}],\"access_offsets\":{},",
                "\"cycles\":{},\"backoff_cycles\":{},\"max_retries\":{},",
                "\"retry_histogram\":{},",
                "\"faults\":{{\"spurious_aborts\":{},\"spurious_op_aborts\":{},",
                "\"false_probe_conflicts\":{},\"capacity_spikes\":{},",
                "\"capacity_spike_aborts\":{},\"delayed_probes\":{},",
                "\"delay_cycles\":{}}}}}",
            ),
            self.tx_started,
            self.tx_attempts,
            self.tx_committed,
            self.tx_aborted,
            u64_list(&self.aborts_by_cause),
            self.fallback_commits,
            self.isolation_violations,
            self.dirty_refetches,
            self.war_speculations,
            self.sig_alias_conflicts,
            self.probes,
            self.probe_targets,
            self.l1_hits,
            self.l1_misses,
            u64_list(&self.conflicts.true_by_type),
            u64_list(&self.conflicts.false_by_type),
            u64_list(self.started_series.stamps()),
            u64_list(self.false_series.stamps()),
            pairs,
            u64_list(self.access_offsets.bytes()),
            self.cycles,
            self.backoff_cycles,
            self.max_retries,
            u64_list(&self.retry_histogram),
            f.spurious_aborts,
            f.spurious_op_aborts,
            f.false_probe_conflicts,
            f.capacity_spikes,
            f.capacity_spike_aborts,
            f.delayed_probes,
            f.delay_cycles,
        )
    }

    /// Rebuild stats from [`RunStats::to_json`] output. Exact inverse:
    /// the reconstructed value compares equal to the original, including
    /// time-series stamp order and histogram contents.
    pub fn from_json(src: &str) -> Result<RunStats, String> {
        let v = parse(src)?;
        RunStats::from_value(&v)
    }

    /// [`RunStats::from_json`] over an already-parsed [`JsonValue`].
    pub fn from_value(v: &JsonValue) -> Result<RunStats, String> {
        fn fixed<const N: usize>(v: &JsonValue, key: &str) -> Result<[u64; N], String> {
            let vec = v.field(key)?.as_u64_vec()?;
            vec.try_into()
                .map_err(|bad: Vec<u64>| format!("{key}: expected {N} entries, got {}", bad.len()))
        }
        let u = |key: &str| -> Result<u64, String> { v.field(key)?.as_u64() };
        let mut pairs = Vec::new();
        for item in v.field("false_by_line")?.as_arr()? {
            let p = item.as_u64_vec()?;
            match p[..] {
                [idx, count] => pairs.push((idx, count)),
                _ => return Err("false_by_line: expected [index, count] pairs".to_string()),
            }
        }
        let conflicts = v.field("conflicts")?;
        let faults = v.field("faults")?;
        let fu = |key: &str| -> Result<u64, String> { faults.field(key)?.as_u64() };
        let offsets: [u64; LINE_SIZE] = fixed(v, "access_offsets")?;
        Ok(RunStats {
            tx_started: u("tx_started")?,
            tx_attempts: u("tx_attempts")?,
            tx_committed: u("tx_committed")?,
            tx_aborted: u("tx_aborted")?,
            aborts_by_cause: fixed(v, "aborts_by_cause")?,
            fallback_commits: u("fallback_commits")?,
            isolation_violations: u("isolation_violations")?,
            dirty_refetches: u("dirty_refetches")?,
            war_speculations: u("war_speculations")?,
            sig_alias_conflicts: u("sig_alias_conflicts")?,
            probes: u("probes")?,
            probe_targets: u("probe_targets")?,
            l1_hits: u("l1_hits")?,
            l1_misses: u("l1_misses")?,
            conflicts: ConflictStats {
                true_by_type: fixed(conflicts, "true_by_type")?,
                false_by_type: fixed(conflicts, "false_by_type")?,
            },
            started_series: TimeSeries::from_stamps(v.field("started_series")?.as_u64_vec()?),
            false_series: TimeSeries::from_stamps(v.field("false_series")?.as_u64_vec()?),
            false_by_line: LineHistogram::from_pairs(pairs),
            access_offsets: OffsetHistogram::from_bytes(offsets),
            cycles: u("cycles")?,
            backoff_cycles: u("backoff_cycles")?,
            max_retries: u("max_retries")? as u32,
            retry_histogram: fixed(v, "retry_histogram")?,
            faults: FaultStats {
                spurious_aborts: fu("spurious_aborts")?,
                spurious_op_aborts: fu("spurious_op_aborts")?,
                false_probe_conflicts: fu("false_probe_conflicts")?,
                capacity_spikes: fu("capacity_spikes")?,
                capacity_spike_aborts: fu("capacity_spike_aborts")?,
                delayed_probes: fu("delayed_probes")?,
                delay_cycles: fu("delay_cycles")?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::AbortCause;
    use asf_core::detector::ConflictType;
    use asf_mem::addr::Addr;

    fn populated() -> RunStats {
        let mut r = RunStats::default();
        r.on_tx_start(100);
        r.on_attempt();
        r.on_abort(AbortCause::Conflict { kind: ConflictType::WriteAfterRead, is_true: false });
        r.on_attempt();
        r.on_commit();
        r.on_final_retries(1);
        r.on_conflict(ConflictType::WriteAfterRead, false, 150, Addr(0x4040).line());
        r.on_conflict(ConflictType::ReadAfterWrite, true, 160, Addr(0x8000).line());
        r.on_access(8, 8);
        r.cycles = 5000;
        r.backoff_cycles = 120;
        r.fallback_commits = 1;
        r.faults.spurious_aborts = 3;
        r.faults.delay_cycles = 400;
        r
    }

    #[test]
    fn round_trip_is_exact() {
        let orig = populated();
        let back = RunStats::from_json(&orig.to_json()).expect("parse back");
        assert_eq!(orig, back);
    }

    #[test]
    fn default_round_trips_too() {
        let orig = RunStats::default();
        let back = RunStats::from_json(&orig.to_json()).expect("parse back");
        assert_eq!(orig, back);
    }

    #[test]
    fn parser_handles_the_basics() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": "x\ny", "c": true, "d": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0], JsonValue::Int(1));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1], JsonValue::Num(2.5));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2], JsonValue::Num(-3.0));
        assert_eq!(v.get("b").unwrap().as_str().unwrap(), "x\ny");
        assert_eq!(v.get("c"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("d"), Some(&JsonValue::Null));
    }

    #[test]
    fn u64_precision_is_preserved() {
        // Exceeds f64's 2^53 integer range — must not round.
        let big = u64::MAX - 1;
        let v = parse(&format!("[{big}]")).unwrap();
        assert_eq!(v.as_arr().unwrap()[0].as_u64().unwrap(), big);
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "quote\" backslash\\ newline\n tab\t ünïcode";
        let v = parse(&escape(nasty)).unwrap();
        assert_eq!(v.as_str().unwrap(), nasty);
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").unwrap_err().contains("trailing"));
        assert!(RunStats::from_json("{}").unwrap_err().contains("missing field"));
    }
}
