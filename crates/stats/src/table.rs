//! Plain-text and CSV table rendering for the harness output.
//!
//! The harness prints every regenerated figure/table as an aligned text
//! table (for the terminal) and can serialise the same rows as CSV (for
//! plotting). Hand-rolled on purpose: no serde dependency, fully
//! deterministic output.

use std::fmt::Write as _;

/// A simple rectangular table: a header row plus data rows of strings.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Optional title printed above the table.
    pub title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    /// Free-form annotations (e.g. why a cell rendered as `failed`),
    /// carried through every output format so files stay self-describing.
    notes: Vec<String>,
}

impl Table {
    /// Create a table with the given title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Attach an annotation rendered below the rows (text), as a comment
    /// row (CSV), and as a trailing `{"_note": …}` object (JSON).
    /// Idempotent: an identical note is recorded once.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        let note = note.into();
        if !self.notes.contains(&note) {
            self.notes.push(note);
        }
        self
    }

    /// Attached annotations, in insertion order.
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// Append a data row; must match the header arity.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Access the raw rows (used by tests and EXPERIMENTS.md generation).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Column headers.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        render_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            render_row(row, &widths, &mut out);
        }
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        out
    }

    /// Render as CSV (RFC-4180 quoting for cells containing commas/quotes).
    pub fn to_csv(&self) -> String {
        fn esc(cell: &str) -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let line = |cells: &[String]| {
            cells.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
        };
        out.push_str(&line(&self.header));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("# {}\n", note.replace('\n', " ")));
        }
        out
    }
}

/// Format a fraction as a percentage with one decimal, e.g. `46.7%`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Format an optional fraction, rendering `None` as `n/a`.
pub fn pct_opt(x: Option<f64>) -> String {
    x.map(pct).unwrap_or_else(|| "n/a".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<_> = s.lines().collect();
        // title + header + rule + 2 rows
        assert_eq!(lines.len(), 5);
        // Right-aligned: the short name is padded to "long-name"'s width.
        assert!(lines[3].starts_with("        a"), "got {:?}", lines[3]);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(vec!["x,y".into(), "q\"u\"o".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n\"x,y\",\"q\"\"u\"\"o\"\n");
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.4671), "46.7%");
        assert_eq!(pct_opt(None), "n/a");
        assert_eq!(pct_opt(Some(0.5)), "50.0%");
    }
}

impl Table {
    /// Render as a JSON array of row objects keyed by the header names
    /// (hand-rolled — no serde; see DESIGN.md's dependency policy).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        let mut out = String::from("[");
        let mut emitted = 0usize;
        for row in &self.rows {
            if emitted > 0 {
                out.push(',');
            }
            emitted += 1;
            out.push_str("\n  {");
            for (j, (key, cell)) in self.header.iter().zip(row).enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\": \"{}\"", esc(key), esc(cell)));
            }
            out.push('}');
        }
        // Notes ride along as trailing objects so consumers of the row
        // stream can tell *why* a cell says "failed" without a side channel.
        for note in &self.notes {
            if emitted > 0 {
                out.push(',');
            }
            emitted += 1;
            out.push_str(&format!("\n  {{\"_note\": \"{}\"}}", esc(note)));
        }
        out.push_str("\n]\n");
        out
    }
}

#[cfg(test)]
mod json_tests {
    use super::*;

    #[test]
    fn json_rows_are_keyed_by_header() {
        let mut t = Table::new("x", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["b \"q\"".into(), "2\n3".into()]);
        let j = t.to_json();
        assert!(j.contains(r#"{"name": "a", "value": "1"}"#));
        assert!(j.contains(r#""name": "b \"q\"""#));
        assert!(j.contains(r#""value": "2\n3""#));
        assert!(j.trim_end().ends_with(']'));
    }

    #[test]
    fn empty_table_is_empty_array() {
        let t = Table::new("x", &["a"]);
        assert_eq!(t.to_json(), "[\n]\n");
    }

    #[test]
    fn notes_appear_in_every_format() {
        let mut t = Table::new("x", &["name", "value"]);
        t.row(vec!["a".into(), "failed".into()]);
        t.note("a: worker panicked after 2 attempt(s)");
        let text = t.render();
        assert!(text.contains("note: a: worker panicked"));
        let csv = t.to_csv();
        assert!(csv.lines().last().unwrap().starts_with("# a: worker"));
        let j = t.to_json();
        assert!(j.contains(r#"{"_note": "a: worker panicked after 2 attempt(s)"}"#));
        // The notes object is a sibling of the row objects in one array.
        assert!(j.contains(r#""value": "failed"},"#));
    }
}
