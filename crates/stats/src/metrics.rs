//! Metrics registry: named monotonic counters, cycle-bucketed interval
//! gauges, and a wall-time phase profiler.
//!
//! This is the accumulator side of the observability layer (DESIGN.md §13).
//! The simulator registers counters by name up front and holds on to the
//! returned integer handles, so the hot path pays one bounds-checked index
//! per increment — no string hashing, no allocation. The whole registry
//! lives behind an `Option` in the machine; when observability is disabled
//! the simulator never constructs one and event sites cost a single branch,
//! mirroring the `FaultPlan::none()` bit-transparency contract.
//!
//! Everything here is deliberately decoupled from the simulation: the
//! registry never touches [`crate::run::RunStats`], draws no randomness and
//! reads simulated cycles only as bucket keys, so enabling it cannot perturb
//! a run. Wall-clock durations recorded by [`PhaseProfiler`] are inherently
//! nondeterministic and are therefore kept out of `RunStats` entirely.

use crate::json::escape;
use std::fmt::Write as _;
use std::time::Duration;

/// Handle to a registered monotonic counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered cycle-bucketed interval gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Named monotonic counters plus cycle-bucketed interval gauges.
///
/// Counters only go up; gauges bucket events by simulated cycle into
/// fixed-width windows (e.g. "conflicts per 100k cycles").
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    names: Vec<String>,
    values: Vec<u64>,
    gauge_names: Vec<String>,
    gauge_widths: Vec<u64>,
    gauge_buckets: Vec<Vec<u64>>,
}

impl MetricsRegistry {
    /// Create an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Register (or look up) a counter by name and return its handle.
    ///
    /// Registering the same name twice returns the same handle, so call
    /// sites don't need to coordinate.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return CounterId(i);
        }
        self.names.push(name.to_string());
        self.values.push(0);
        CounterId(self.names.len() - 1)
    }

    /// Increment a counter by one.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.values[id.0] += 1;
    }

    /// Increment a counter by `n`.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.values[id.0] += n;
    }

    /// Current value of a counter.
    pub fn get(&self, id: CounterId) -> u64 {
        self.values[id.0]
    }

    /// Current value of a counter looked up by name, if registered.
    pub fn get_by_name(&self, name: &str) -> Option<u64> {
        self.names.iter().position(|n| n == name).map(|i| self.values[i])
    }

    /// Number of registered counters.
    pub fn counter_count(&self) -> usize {
        self.names.len()
    }

    /// Iterate `(name, value)` over all counters in registration order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.names.iter().map(String::as_str).zip(self.values.iter().copied())
    }

    /// Register (or look up) an interval gauge bucketing events into
    /// windows of `width` cycles. Re-registering a name returns the
    /// existing handle (the original width wins).
    pub fn interval(&mut self, name: &str, width: u64) -> GaugeId {
        assert!(width > 0, "interval width must be positive");
        if let Some(i) = self.gauge_names.iter().position(|n| n == name) {
            return GaugeId(i);
        }
        self.gauge_names.push(name.to_string());
        self.gauge_widths.push(width);
        self.gauge_buckets.push(Vec::new());
        GaugeId(self.gauge_names.len() - 1)
    }

    /// Record one event at simulated `cycle` into its gauge bucket.
    #[inline]
    pub fn bump(&mut self, id: GaugeId, cycle: u64) {
        let bucket = (cycle / self.gauge_widths[id.0]) as usize;
        let buckets = &mut self.gauge_buckets[id.0];
        if buckets.len() <= bucket {
            buckets.resize(bucket + 1, 0);
        }
        buckets[bucket] += 1;
    }

    /// Iterate `(name, width, buckets)` over all interval gauges.
    pub fn intervals(&self) -> impl Iterator<Item = (&str, u64, &[u64])> {
        self.gauge_names
            .iter()
            .zip(self.gauge_widths.iter())
            .zip(self.gauge_buckets.iter())
            .map(|((n, &w), b)| (n.as_str(), w, b.as_slice()))
    }

    /// Serialise counters and gauges as a JSON object:
    /// `{"counters":{..},"intervals":{name:{"width":w,"buckets":[..]}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, value)) in self.counters().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: {}", escape(name), value);
        }
        out.push_str("\n  },\n  \"intervals\": {");
        for (i, (name, width, buckets)) in self.intervals().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: {{\"width\": {}, \"buckets\": [", escape(name), width);
            for (j, b) in buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{b}");
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

/// Handle to a registered profiling phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseId(usize);

/// Number of log2(ns) buckets a phase histogram holds (covers < 1 ns up to
/// ~½ s per sample).
pub const PHASE_HIST_BUCKETS: usize = 30;

/// Wall-time-per-phase accumulator for hot-path profiling hooks.
///
/// Each recorded sample adds to the phase's call count, total nanoseconds,
/// running maximum, and a log2(ns) histogram. Samples come from
/// `std::time::Instant`, so totals vary run to run — keep reports out of
/// anything digest-pinned.
#[derive(Clone, Debug, Default)]
pub struct PhaseProfiler {
    names: Vec<String>,
    counts: Vec<u64>,
    total_ns: Vec<u64>,
    max_ns: Vec<u64>,
    hist: Vec<[u64; PHASE_HIST_BUCKETS]>,
}

impl PhaseProfiler {
    /// Create an empty profiler.
    pub fn new() -> PhaseProfiler {
        PhaseProfiler::default()
    }

    /// Register (or look up) a phase by name.
    pub fn phase(&mut self, name: &str) -> PhaseId {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return PhaseId(i);
        }
        self.names.push(name.to_string());
        self.counts.push(0);
        self.total_ns.push(0);
        self.max_ns.push(0);
        self.hist.push([0; PHASE_HIST_BUCKETS]);
        PhaseId(self.names.len() - 1)
    }

    /// Record one sample for a phase.
    #[inline]
    pub fn record(&mut self, id: PhaseId, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let i = id.0;
        self.counts[i] += 1;
        self.total_ns[i] = self.total_ns[i].saturating_add(ns);
        self.max_ns[i] = self.max_ns[i].max(ns);
        let bucket = (64 - ns.leading_zeros() as usize).min(PHASE_HIST_BUCKETS - 1);
        self.hist[i][bucket] += 1;
    }

    /// Number of registered phases.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no phases are registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate `(name, count, total_ns, max_ns, histogram)` per phase.
    pub fn phases(&self) -> impl Iterator<Item = (&str, u64, u64, u64, &[u64; PHASE_HIST_BUCKETS])> {
        (0..self.names.len()).map(|i| {
            (self.names[i].as_str(), self.counts[i], self.total_ns[i], self.max_ns[i], &self.hist[i])
        })
    }

    /// Mean nanoseconds per sample for a phase (0 when never sampled).
    pub fn mean_ns(&self, id: PhaseId) -> u64 {
        let i = id.0;
        self.total_ns[i].checked_div(self.counts[i]).unwrap_or(0)
    }

    /// Serialise as a JSON object:
    /// `{name:{"count":..,"total_ns":..,"max_ns":..,"hist_log2_ns":[..]}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, count, total, max, hist)) in self.phases().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n  {}: {{\"count\": {}, \"total_ns\": {}, \"max_ns\": {}, \"hist_log2_ns\": [",
                escape(name),
                count,
                total,
                max
            );
            for (j, b) in hist.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{b}");
            }
            out.push_str("]}");
        }
        out.push_str("\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn counters_register_and_accumulate() {
        let mut r = MetricsRegistry::new();
        let a = r.counter("tx.commits");
        let b = r.counter("tx.aborts");
        let a2 = r.counter("tx.commits");
        assert_eq!(a, a2, "re-registration returns the same handle");
        r.inc(a);
        r.add(a, 4);
        r.inc(b);
        assert_eq!(r.get(a), 5);
        assert_eq!(r.get(b), 1);
        assert_eq!(r.get_by_name("tx.commits"), Some(5));
        assert_eq!(r.get_by_name("nope"), None);
        assert_eq!(r.counter_count(), 2);
        let all: Vec<_> = r.counters().collect();
        assert_eq!(all, vec![("tx.commits", 5), ("tx.aborts", 1)]);
    }

    #[test]
    fn intervals_bucket_by_cycle() {
        let mut r = MetricsRegistry::new();
        let g = r.interval("conflicts", 100);
        r.bump(g, 0);
        r.bump(g, 99);
        r.bump(g, 100);
        r.bump(g, 350);
        let (name, width, buckets) = r.intervals().next().unwrap();
        assert_eq!(name, "conflicts");
        assert_eq!(width, 100);
        assert_eq!(buckets, &[2, 1, 0, 1]);
    }

    #[test]
    fn snapshot_json_parses() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("probe.walks");
        r.add(c, 7);
        let g = r.interval("conflicts.per_interval", 50);
        r.bump(g, 120);
        let v = parse(&r.to_json()).expect("snapshot JSON parses");
        let counters = v.field("counters").unwrap();
        assert_eq!(counters.field("probe.walks").unwrap().as_u64().unwrap(), 7);
        let iv = v.field("intervals").unwrap().field("conflicts.per_interval").unwrap();
        assert_eq!(iv.field("width").unwrap().as_u64().unwrap(), 50);
        assert_eq!(iv.field("buckets").unwrap().as_u64_vec().unwrap(), vec![0, 0, 1]);
    }

    #[test]
    fn profiler_records_samples() {
        let mut p = PhaseProfiler::new();
        let ph = p.phase("probe");
        p.record(ph, Duration::from_nanos(100));
        p.record(ph, Duration::from_nanos(300));
        let (name, count, total, max, hist) = p.phases().next().unwrap();
        assert_eq!(name, "probe");
        assert_eq!(count, 2);
        assert_eq!(total, 400);
        assert_eq!(max, 300);
        assert_eq!(hist.iter().sum::<u64>(), 2);
        assert_eq!(p.mean_ns(ph), 200);
        let v = parse(&p.to_json()).expect("profiler JSON parses");
        assert_eq!(v.field("probe").unwrap().field("count").unwrap().as_u64().unwrap(), 2);
    }

    #[test]
    fn profiler_zero_duration_sample_is_safe() {
        let mut p = PhaseProfiler::new();
        let ph = p.phase("noop");
        p.record(ph, Duration::ZERO);
        assert_eq!(p.mean_ns(ph), 0);
        let (_, count, total, ..) = p.phases().next().unwrap();
        assert_eq!((count, total), (1, 0));
    }
}
