//! Conflict counting and classification (Figures 1, 2, 8, 9).

use asf_core::detector::ConflictType;
use core::fmt;

/// Counts of detected transactional conflicts, split by oracle verdict
/// (true/false) and by type (WAR / RAW / WAW).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ConflictStats {
    /// True conflicts by type: [WAR, RAW, WAW].
    pub true_by_type: [u64; 3],
    /// False conflicts by type: [WAR, RAW, WAW].
    pub false_by_type: [u64; 3],
}

fn idx(t: ConflictType) -> usize {
    match t {
        ConflictType::WriteAfterRead => 0,
        ConflictType::ReadAfterWrite => 1,
        ConflictType::WriteAfterWrite => 2,
    }
}

impl ConflictStats {
    /// Record one detected conflict.
    pub fn record(&mut self, kind: ConflictType, is_true: bool) {
        if is_true {
            self.true_by_type[idx(kind)] += 1;
        } else {
            self.false_by_type[idx(kind)] += 1;
        }
    }

    /// Total conflicts detected.
    pub fn total(&self) -> u64 {
        self.true_total() + self.false_total()
    }

    /// True conflicts detected.
    pub fn true_total(&self) -> u64 {
        self.true_by_type.iter().sum()
    }

    /// False conflicts detected.
    pub fn false_total(&self) -> u64 {
        self.false_by_type.iter().sum()
    }

    /// False conflicts of one type.
    pub fn false_of(&self, kind: ConflictType) -> u64 {
        self.false_by_type[idx(kind)]
    }

    /// True conflicts of one type.
    pub fn true_of(&self, kind: ConflictType) -> u64 {
        self.true_by_type[idx(kind)]
    }

    /// Fraction of all conflicts that are false (Figure 1); `None` when no
    /// conflict was observed.
    pub fn false_rate(&self) -> Option<f64> {
        let t = self.total();
        if t == 0 {
            None
        } else {
            Some(self.false_total() as f64 / t as f64)
        }
    }

    /// Share of each type among *false* conflicts (Figure 2), as
    /// `[WAR, RAW, WAW]` fractions; `None` when no false conflict occurred.
    pub fn false_type_shares(&self) -> Option<[f64; 3]> {
        let f = self.false_total();
        if f == 0 {
            None
        } else {
            Some(self.false_by_type.map(|c| c as f64 / f as f64))
        }
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &ConflictStats) {
        for i in 0..3 {
            self.true_by_type[i] += other.true_by_type[i];
            self.false_by_type[i] += other.false_by_type[i];
        }
    }

    /// False-conflict reduction rate of `self` (the improved system)
    /// relative to `base` (Figure 8): `1 − false(self)/false(base)`.
    /// `None` when the base saw no false conflicts.
    pub fn false_reduction_vs(&self, base: &ConflictStats) -> Option<f64> {
        let b = base.false_total();
        if b == 0 {
            None
        } else {
            Some(1.0 - self.false_total() as f64 / b as f64)
        }
    }

    /// Overall-conflict reduction rate relative to `base` (Figure 9).
    pub fn total_reduction_vs(&self, base: &ConflictStats) -> Option<f64> {
        let b = base.total();
        if b == 0 {
            None
        } else {
            Some(1.0 - self.total() as f64 / b as f64)
        }
    }
}

impl fmt::Display for ConflictStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "conflicts: {} total ({} true / {} false; false WAR {} RAW {} WAW {})",
            self.total(),
            self.true_total(),
            self.false_total(),
            self.false_by_type[0],
            self.false_by_type[1],
            self.false_by_type[2],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ConflictType::*;

    #[test]
    fn record_and_totals() {
        let mut s = ConflictStats::default();
        s.record(WriteAfterRead, false);
        s.record(WriteAfterRead, false);
        s.record(ReadAfterWrite, true);
        s.record(WriteAfterWrite, false);
        assert_eq!(s.total(), 4);
        assert_eq!(s.false_total(), 3);
        assert_eq!(s.true_total(), 1);
        assert_eq!(s.false_of(WriteAfterRead), 2);
        assert_eq!(s.true_of(ReadAfterWrite), 1);
    }

    #[test]
    fn false_rate() {
        let mut s = ConflictStats::default();
        assert_eq!(s.false_rate(), None);
        s.record(WriteAfterRead, false);
        s.record(ReadAfterWrite, true);
        assert_eq!(s.false_rate(), Some(0.5));
    }

    #[test]
    fn type_shares_sum_to_one() {
        let mut s = ConflictStats::default();
        s.record(WriteAfterRead, false);
        s.record(ReadAfterWrite, false);
        s.record(ReadAfterWrite, false);
        s.record(WriteAfterWrite, true); // true conflicts don't affect shares
        let shares = s.false_type_shares().unwrap();
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((shares[1] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn reductions() {
        let mut base = ConflictStats::default();
        for _ in 0..10 {
            base.record(WriteAfterRead, false);
        }
        for _ in 0..5 {
            base.record(ReadAfterWrite, true);
        }
        let mut improved = ConflictStats::default();
        for _ in 0..2 {
            improved.record(WriteAfterRead, false);
        }
        for _ in 0..5 {
            improved.record(ReadAfterWrite, true);
        }
        assert!((improved.false_reduction_vs(&base).unwrap() - 0.8).abs() < 1e-12);
        let total_red = improved.total_reduction_vs(&base).unwrap();
        assert!((total_red - (1.0 - 7.0 / 15.0)).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = ConflictStats::default();
        a.record(WriteAfterRead, false);
        let mut b = ConflictStats::default();
        b.record(WriteAfterRead, true);
        b.record(WriteAfterWrite, false);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.false_total(), 2);
    }

    #[test]
    fn zero_base_reduction_is_none() {
        let a = ConflictStats::default();
        let b = ConflictStats::default();
        assert_eq!(a.false_reduction_vs(&b), None);
        assert_eq!(a.total_reduction_vs(&b), None);
    }
}
