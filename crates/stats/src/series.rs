//! Cumulative event time series (Figure 3).
//!
//! The paper plots cumulative started transactions and cumulative false
//! conflicts against execution time. A [`TimeSeries`] records raw
//! `(cycle)` event stamps and produces a binned cumulative curve on demand.

/// Cumulative counter over simulated time.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TimeSeries {
    /// Event timestamps in cycles, non-decreasing order not required.
    stamps: Vec<u64>,
}

impl TimeSeries {
    /// Record one event at `cycle`.
    pub fn record(&mut self, cycle: u64) {
        self.stamps.push(cycle);
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.stamps.len() as u64
    }

    /// Latest event timestamp (0 when empty).
    pub fn last_cycle(&self) -> u64 {
        self.stamps.iter().copied().max().unwrap_or(0)
    }

    /// Cumulative curve with `bins` equal time bins over `[0, horizon]`:
    /// element *i* is the number of events at or before the end of bin *i*.
    pub fn cumulative(&self, horizon: u64, bins: usize) -> Vec<u64> {
        assert!(bins >= 1);
        let mut counts = vec![0u64; bins];
        let h = horizon.max(1);
        for &t in &self.stamps {
            let idx = ((t.min(h) as u128 * bins as u128) / (h as u128 + 1)) as usize;
            counts[idx.min(bins - 1)] += 1;
        }
        // prefix sum
        for i in 1..bins {
            counts[i] += counts[i - 1];
        }
        counts
    }

    /// Largest single-bin increment divided by the mean increment — a
    /// burstiness score. A perfectly linear arrival gives ≈ 1; the genome
    /// phase bursts of Figure 3 give ≫ 1.
    pub fn burstiness(&self, horizon: u64, bins: usize) -> f64 {
        let cum = self.cumulative(horizon, bins);
        let total = *cum.last().unwrap_or(&0);
        if total == 0 {
            return 0.0;
        }
        let mut max_inc = cum[0];
        for i in 1..cum.len() {
            max_inc = max_inc.max(cum[i] - cum[i - 1]);
        }
        max_inc as f64 / (total as f64 / bins as f64)
    }

    /// Merge another series into this one.
    pub fn merge(&mut self, other: &TimeSeries) {
        self.stamps.extend_from_slice(&other.stamps);
    }

    /// Raw event stamps in recorded order (checkpoint serialisation).
    pub fn stamps(&self) -> &[u64] {
        &self.stamps
    }

    /// Rebuild a series from raw stamps, preserving their order (the
    /// inverse of [`TimeSeries::stamps`]; exact round-trip).
    pub fn from_stamps(stamps: Vec<u64>) -> TimeSeries {
        TimeSeries { stamps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cumulative_prefix_sums() {
        let mut s = TimeSeries::default();
        for t in [0u64, 10, 20, 95, 99] {
            s.record(t);
        }
        let c = s.cumulative(99, 10);
        assert_eq!(c.len(), 10);
        assert_eq!(*c.last().unwrap(), 5);
        assert_eq!(c[0], 1); // only t=0 in bin 0 (bin width 10)
        assert_eq!(c[2], 3);
        // Monotone non-decreasing.
        assert!(c.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn events_beyond_horizon_clamp_to_last_bin() {
        let mut s = TimeSeries::default();
        s.record(1_000_000);
        let c = s.cumulative(100, 4);
        assert_eq!(c, vec![0, 0, 0, 1]);
    }

    #[test]
    fn linear_arrivals_have_low_burstiness() {
        let mut s = TimeSeries::default();
        for t in 0..1000 {
            s.record(t);
        }
        let b = s.burstiness(999, 10);
        assert!((0.9..1.2).contains(&b), "burstiness {b}");
    }

    #[test]
    fn bursty_arrivals_have_high_burstiness() {
        let mut s = TimeSeries::default();
        for t in 0..1000u64 {
            // all events in one 10% window
            s.record(500 + t % 50);
        }
        let b = s.burstiness(999, 10);
        assert!(b > 5.0, "burstiness {b}");
    }

    #[test]
    fn empty_series() {
        let s = TimeSeries::default();
        assert_eq!(s.total(), 0);
        assert_eq!(s.last_cycle(), 0);
        assert_eq!(s.cumulative(100, 4), vec![0, 0, 0, 0]);
        assert_eq!(s.burstiness(100, 4), 0.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = TimeSeries::default();
        a.record(1);
        let mut b = TimeSeries::default();
        b.record(2);
        a.merge(&b);
        assert_eq!(a.total(), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Cumulative curves are monotone and end at the total.
        #[test]
        fn cumulative_is_monotone_and_complete(
            stamps in prop::collection::vec(0u64..1_000_000, 0..300),
            bins in 1usize..64,
        ) {
            let mut s = TimeSeries::default();
            for &t in &stamps {
                s.record(t);
            }
            let horizon = s.last_cycle();
            let c = s.cumulative(horizon, bins);
            prop_assert_eq!(c.len(), bins);
            prop_assert!(c.windows(2).all(|w| w[0] <= w[1]));
            prop_assert_eq!(*c.last().unwrap(), stamps.len() as u64);
        }

        /// Merging two series preserves the combined cumulative total.
        #[test]
        fn merge_preserves_totals(
            a in prop::collection::vec(0u64..10_000, 0..100),
            b in prop::collection::vec(0u64..10_000, 0..100),
        ) {
            let mut sa = TimeSeries::default();
            for &t in &a { sa.record(t); }
            let mut sb = TimeSeries::default();
            for &t in &b { sb.record(t); }
            sa.merge(&sb);
            prop_assert_eq!(sa.total(), (a.len() + b.len()) as u64);
        }
    }
}
