//! Terminal bar charts — the paper's figures are bar charts, so the
//! harness can render its regenerated tables the same way.

use std::fmt::Write as _;

/// A horizontal bar chart: labelled values rendered with unicode blocks.
#[derive(Clone, Debug, Default)]
pub struct BarChart {
    /// Chart title.
    pub title: String,
    bars: Vec<(String, f64)>,
    /// Upper bound of the axis; `None` auto-scales to the max value.
    pub max: Option<f64>,
    /// Suffix printed after each value (e.g. `"%"`).
    pub unit: &'static str,
}

impl BarChart {
    /// Create an empty chart.
    pub fn new(title: impl Into<String>, unit: &'static str) -> BarChart {
        BarChart { title: title.into(), bars: Vec::new(), max: None, unit }
    }

    /// Append one labelled bar.
    pub fn bar(&mut self, label: impl Into<String>, value: f64) -> &mut Self {
        self.bars.push((label.into(), value));
        self
    }

    /// Number of bars.
    pub fn len(&self) -> usize {
        self.bars.len()
    }

    /// True when no bars have been added.
    pub fn is_empty(&self) -> bool {
        self.bars.is_empty()
    }

    /// Render with bars of up to `width` cells. Negative values render as a
    /// left-pointing bar marked with `◄`.
    pub fn render(&self, width: usize) -> String {
        const BLOCKS: [char; 8] = ['▏', '▎', '▍', '▌', '▋', '▊', '▉', '█'];
        let label_w = self.bars.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        let max = self
            .max
            .unwrap_or_else(|| self.bars.iter().map(|&(_, v)| v.abs()).fold(0.0, f64::max))
            .max(1e-9);
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "── {} ──", self.title);
        }
        for (label, value) in &self.bars {
            let frac = (value.abs() / max).min(1.0);
            let cells = frac * width as f64;
            let full = cells.floor() as usize;
            let rem = ((cells - full as f64) * 8.0).floor() as usize;
            let mut bar = "█".repeat(full);
            if rem > 0 && full < width {
                bar.push(BLOCKS[rem.saturating_sub(1)]);
            }
            let sign = if *value < 0.0 { "◄" } else { "" };
            let _ = writeln!(
                out,
                "{label:>label_w$} |{sign}{bar:<width$} {value:.1}{unit}",
                unit = self.unit,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scaled_bars() {
        let mut c = BarChart::new("demo", "%");
        c.bar("a", 100.0).bar("b", 50.0).bar("zz", 0.0);
        let s = c.render(10);
        assert!(s.contains("── demo ──"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // 'a' is full width, 'b' half.
        assert!(lines[1].contains("██████████"));
        assert!(lines[2].contains("█████"));
        assert!(!lines[2].contains("██████████"));
        assert!(lines[3].contains("0.0%"));
        // Labels right-aligned to the widest.
        assert!(lines[1].starts_with(" a |"));
        assert!(lines[3].starts_with("zz |"));
    }

    #[test]
    fn negative_values_are_marked() {
        let mut c = BarChart::new("", "%");
        c.bar("down", -5.0).bar("up", 10.0);
        let s = c.render(8);
        assert!(s.contains("◄"));
        assert!(s.contains("-5.0%"));
    }

    #[test]
    fn explicit_max_clamps() {
        let mut c = BarChart::new("", "");
        c.max = Some(10.0);
        c.bar("big", 100.0);
        let s = c.render(4);
        // Clamped to full width, no panic.
        assert!(s.contains("████"));
    }

    #[test]
    fn empty_chart() {
        let c = BarChart::new("x", "");
        assert!(c.is_empty());
        assert_eq!(c.render(10).lines().count(), 1); // just the title
    }
}
