//! Terminal bar charts — the paper's figures are bar charts, so the
//! harness can render its regenerated tables the same way.

use std::fmt::Write as _;

/// A horizontal bar chart: labelled values rendered with unicode blocks.
#[derive(Clone, Debug, Default)]
pub struct BarChart {
    /// Chart title.
    pub title: String,
    bars: Vec<(String, f64)>,
    /// Upper bound of the axis; `None` auto-scales to the max value.
    pub max: Option<f64>,
    /// Suffix printed after each value (e.g. `"%"`).
    pub unit: &'static str,
}

impl BarChart {
    /// Create an empty chart.
    pub fn new(title: impl Into<String>, unit: &'static str) -> BarChart {
        BarChart { title: title.into(), bars: Vec::new(), max: None, unit }
    }

    /// Append one labelled bar.
    pub fn bar(&mut self, label: impl Into<String>, value: f64) -> &mut Self {
        self.bars.push((label.into(), value));
        self
    }

    /// Number of bars.
    pub fn len(&self) -> usize {
        self.bars.len()
    }

    /// True when no bars have been added.
    pub fn is_empty(&self) -> bool {
        self.bars.is_empty()
    }

    /// Render with bars of up to `width` cells. Negative values render as a
    /// left-pointing bar marked with `◄`.
    ///
    /// Degenerate inputs are safe: an all-zero chart renders zero-width
    /// bars, and non-finite values (NaN / ±∞) are treated as zero width —
    /// they neither poison the auto-scaled axis nor panic.
    pub fn render(&self, width: usize) -> String {
        const BLOCKS: [char; 8] = ['▏', '▎', '▍', '▌', '▋', '▊', '▉', '█'];
        let finite = |v: f64| if v.is_finite() { v } else { 0.0 };
        let label_w = self.bars.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        let max = self
            .max
            .filter(|m| m.is_finite())
            .unwrap_or_else(|| self.bars.iter().map(|&(_, v)| finite(v).abs()).fold(0.0, f64::max))
            .max(1e-9);
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "── {} ──", self.title);
        }
        for (label, value) in &self.bars {
            let frac = (finite(*value).abs() / max).min(1.0);
            let cells = frac * width as f64;
            let full = cells.floor() as usize;
            let rem = ((cells - full as f64) * 8.0).floor() as usize;
            let mut bar = "█".repeat(full);
            if rem > 0 && full < width {
                bar.push(BLOCKS[rem.saturating_sub(1)]);
            }
            let sign = if *value < 0.0 { "◄" } else { "" };
            let _ = writeln!(
                out,
                "{label:>label_w$} |{sign}{bar:<width$} {value:.1}{unit}",
                unit = self.unit,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scaled_bars() {
        let mut c = BarChart::new("demo", "%");
        c.bar("a", 100.0).bar("b", 50.0).bar("zz", 0.0);
        let s = c.render(10);
        assert!(s.contains("── demo ──"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // 'a' is full width, 'b' half.
        assert!(lines[1].contains("██████████"));
        assert!(lines[2].contains("█████"));
        assert!(!lines[2].contains("██████████"));
        assert!(lines[3].contains("0.0%"));
        // Labels right-aligned to the widest.
        assert!(lines[1].starts_with(" a |"));
        assert!(lines[3].starts_with("zz |"));
    }

    #[test]
    fn negative_values_are_marked() {
        let mut c = BarChart::new("", "%");
        c.bar("down", -5.0).bar("up", 10.0);
        let s = c.render(8);
        assert!(s.contains("◄"));
        assert!(s.contains("-5.0%"));
    }

    #[test]
    fn explicit_max_clamps() {
        let mut c = BarChart::new("", "");
        c.max = Some(10.0);
        c.bar("big", 100.0);
        let s = c.render(4);
        // Clamped to full width, no panic.
        assert!(s.contains("████"));
    }

    #[test]
    fn empty_chart() {
        let c = BarChart::new("x", "");
        assert!(c.is_empty());
        assert_eq!(c.render(10).lines().count(), 1); // just the title
    }

    #[test]
    fn all_zero_chart_renders_zero_width_bars() {
        let mut c = BarChart::new("zeros", "");
        c.bar("a", 0.0).bar("b", 0.0);
        let s = c.render(10);
        assert!(!s.contains('█'), "no bar cells for all-zero values: {s}");
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains("0.0"));
    }

    #[test]
    fn nan_and_inf_values_do_not_poison_the_scale() {
        let mut c = BarChart::new("", "");
        c.bar("nan", f64::NAN).bar("inf", f64::INFINITY).bar("ok", 10.0);
        let s = c.render(10);
        let lines: Vec<&str> = s.lines().collect();
        // NaN/∞ render as zero-width bars; the finite value still scales to
        // full width instead of being divided by a NaN/infinite max.
        assert!(!lines[0].contains('█'), "NaN bar must be empty: {}", lines[0]);
        assert!(!lines[1].contains('█'), "∞ bar must be empty: {}", lines[1]);
        assert!(lines[2].contains("██████████"), "finite bar scales to max: {}", lines[2]);
    }

    #[test]
    fn non_finite_explicit_max_falls_back_to_auto_scale() {
        let mut c = BarChart::new("", "");
        c.max = Some(f64::NAN);
        c.bar("v", 4.0);
        let s = c.render(8);
        assert!(s.contains("████████"), "auto-scale kicks in: {s}");
    }
}
