//! # asf-stats — measurement layer
//!
//! Everything the paper measures, as reusable accumulators:
//!
//! * [`conflict::ConflictStats`] — total / true / false conflicts with the
//!   WAR / RAW / WAW breakdown (Figures 1, 2, 8, 9);
//! * [`series::TimeSeries`] — cumulative event counts over execution time
//!   (Figure 3);
//! * [`histogram::LineHistogram`] — false conflicts by cache-line index
//!   (Figure 4);
//! * [`histogram::OffsetHistogram`] — accesses by intra-line byte offset
//!   (Figure 5);
//! * [`run::RunStats`] — the per-run bundle the simulator fills in, plus
//!   the transaction / abort accounting behind Figure 10;
//! * [`fault::FaultStats`] — injected-fault accounting for the
//!   deterministic fault layer (kept out of the paper's abort taxonomy);
//! * [`json`] — minimal JSON parse/serialise for crash-safe checkpoints
//!   (`RunStats` round-trips exactly);
//! * [`digest`] — the FNV-1a fold shared by the golden-stats fence and the
//!   serve layer's content-addressed result cache;
//! * [`metrics`] — observability accumulators: named counters,
//!   cycle-bucketed interval gauges and a wall-time phase profiler
//!   (DESIGN.md §13);
//! * [`openmetrics`] — fixed-bucket log2 latency histograms plus a
//!   Prometheus/OpenMetrics text renderer and validating parser
//!   (DESIGN.md §18);
//! * [`slog`] — JSON-lines structured logger with `ASF_LOG` level
//!   filtering and injectable sinks, carrying request correlation ids
//!   through the serve layer;
//! * [`chrome`] — streaming Chrome `trace_event` / Perfetto JSON writer for
//!   the cycle-domain timeline export;
//! * [`table`] — plain-text and CSV rendering for the harness;
//! * [`chart::BarChart`] — terminal bar charts mirroring the paper's figure
//!   style.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod chrome;
pub mod conflict;
pub mod digest;
pub mod fault;
pub mod histogram;
pub mod json;
pub mod metrics;
pub mod openmetrics;
pub mod run;
pub mod series;
pub mod slog;
pub mod table;

pub use chart::BarChart;
pub use chrome::ChromeTraceWriter;
pub use conflict::ConflictStats;
pub use fault::FaultStats;
pub use histogram::{LineHistogram, OffsetHistogram};
pub use json::JsonValue;
pub use metrics::{MetricsRegistry, PhaseProfiler};
pub use openmetrics::{AtomicHistogram, Histogram};
pub use run::{AbortCause, RunStats};
pub use series::TimeSeries;
pub use table::Table;
