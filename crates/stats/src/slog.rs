//! Structured JSON-lines logging (DESIGN.md §18).
//!
//! One log call emits one JSON object on one line: a monotonic sequence
//! number, wall-clock milliseconds, level, event name and typed fields.
//! Serve-layer lines additionally carry a per-request correlation id and
//! the job digest so a slow loadtest request can be joined against
//! pool/worker/cache events (the same id is returned to clients as the
//! `x-asf-request-id` header).
//!
//! The level threshold comes from the `ASF_LOG` environment variable
//! (`error|warn|info|debug|trace|off`, default `warn` so existing smoke
//! output stays clean); the sink is injectable so tests capture lines in
//! memory instead of stderr. Logging never panics: sink write errors are
//! swallowed — losing a log line must never take down a worker.

use crate::json::escape;
use std::fmt::Write as _;
use std::io::Write as IoWrite;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or correctness-relevant failures.
    Error,
    /// Degraded but self-healing conditions (respawns, quarantines).
    Warn,
    /// Request/job lifecycle milestones.
    Info,
    /// Per-step detail (cache decisions, retries).
    Debug,
    /// Firehose.
    Trace,
}

impl Level {
    /// Lower-case name used in log lines and `ASF_LOG`.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parse an `ASF_LOG` value; `None` for unknown strings.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }
}

struct Inner {
    /// `None` disables the logger entirely.
    level: Option<Level>,
    sink: Mutex<Box<dyn IoWrite + Send>>,
    seq: AtomicU64,
}

/// Cheaply clonable JSON-lines logger handle.
#[derive(Clone)]
pub struct Logger {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Logger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Logger").field("level", &self.inner.level).finish()
    }
}

impl Logger {
    /// Logger writing to an injected sink at an explicit level.
    pub fn with_sink(level: Level, sink: Box<dyn IoWrite + Send>) -> Logger {
        Logger {
            inner: Arc::new(Inner {
                level: Some(level),
                sink: Mutex::new(sink),
                seq: AtomicU64::new(0),
            }),
        }
    }

    /// Logger writing to stderr at an explicit level.
    pub fn stderr(level: Level) -> Logger {
        Logger::with_sink(level, Box::new(std::io::stderr()))
    }

    /// Logger configured from `ASF_LOG`: unset or unknown values default
    /// to `warn`; `off`/`none`/`0` disable logging.
    pub fn from_env() -> Logger {
        match std::env::var("ASF_LOG") {
            Ok(v) if matches!(v.trim().to_ascii_lowercase().as_str(), "off" | "none" | "0") => {
                Logger::disabled()
            }
            Ok(v) => Logger::stderr(Level::parse(&v).unwrap_or(Level::Warn)),
            Err(_) => Logger::stderr(Level::Warn),
        }
    }

    /// Logger that drops everything.
    pub fn disabled() -> Logger {
        Logger {
            inner: Arc::new(Inner {
                level: None,
                sink: Mutex::new(Box::new(std::io::sink())),
                seq: AtomicU64::new(0),
            }),
        }
    }

    /// Whether a line at `level` would be emitted.
    pub fn enabled(&self, level: Level) -> bool {
        self.inner.level.is_some_and(|max| level <= max)
    }

    /// Start building a line at `level` for `event`. The line is emitted
    /// when [`LineBuilder::emit`] runs; a disabled level builds nothing.
    pub fn at(&self, level: Level, event: &str) -> LineBuilder<'_> {
        let buf = if self.enabled(level) {
            let mut s = String::with_capacity(128);
            let ts = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0);
            let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
            let _ = write!(
                s,
                "{{\"seq\":{},\"ts_ms\":{},\"level\":\"{}\",\"event\":{}",
                seq,
                ts,
                level.as_str(),
                escape(event)
            );
            Some(s)
        } else {
            None
        };
        LineBuilder { logger: self, buf }
    }

    /// Shorthand for [`Logger::at`] with [`Level::Info`].
    pub fn info(&self, event: &str) -> LineBuilder<'_> {
        self.at(Level::Info, event)
    }

    /// Shorthand for [`Logger::at`] with [`Level::Warn`].
    pub fn warn(&self, event: &str) -> LineBuilder<'_> {
        self.at(Level::Warn, event)
    }

    /// Shorthand for [`Logger::at`] with [`Level::Error`].
    pub fn error(&self, event: &str) -> LineBuilder<'_> {
        self.at(Level::Error, event)
    }

    /// Shorthand for [`Logger::at`] with [`Level::Debug`].
    pub fn debug(&self, event: &str) -> LineBuilder<'_> {
        self.at(Level::Debug, event)
    }

    fn write_line(&self, line: &str) {
        if let Ok(mut sink) = self.inner.sink.lock() {
            let _ = sink.write_all(line.as_bytes());
            let _ = sink.write_all(b"\n");
            let _ = sink.flush();
        }
    }
}

/// Accumulates fields for one log line; emits on [`LineBuilder::emit`].
#[must_use = "call .emit() to write the log line"]
pub struct LineBuilder<'a> {
    logger: &'a Logger,
    buf: Option<String>,
}

impl LineBuilder<'_> {
    /// Attach a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        if let Some(buf) = self.buf.as_mut() {
            let _ = write!(buf, ",{}:{}", escape(key), escape(value));
        }
        self
    }

    /// Attach an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        if let Some(buf) = self.buf.as_mut() {
            let _ = write!(buf, ",{}:{}", escape(key), value);
        }
        self
    }

    /// Attach a float field.
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        if let Some(buf) = self.buf.as_mut() {
            if value.is_finite() {
                let _ = write!(buf, ",{}:{}", escape(key), value);
            } else {
                let _ = write!(buf, ",{}:null", escape(key));
            }
        }
        self
    }

    /// Attach a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        if let Some(buf) = self.buf.as_mut() {
            let _ = write!(buf, ",{}:{}", escape(key), value);
        }
        self
    }

    /// Close the object and write the line to the sink.
    pub fn emit(mut self) {
        if let Some(mut buf) = self.buf.take() {
            buf.push('}');
            self.logger.write_line(&buf);
        }
    }
}

/// In-memory sink for tests: clone it, hand one copy to
/// [`Logger::with_sink`], read lines back from the other.
#[derive(Clone, Debug, Default)]
pub struct BufferSink {
    buf: Arc<Mutex<Vec<u8>>>,
}

impl BufferSink {
    /// Create an empty shared buffer.
    pub fn new() -> BufferSink {
        BufferSink::default()
    }

    /// Everything written so far, as UTF-8.
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.buf.lock().expect("sink lock")).into_owned()
    }

    /// Written lines, split and owned.
    pub fn lines(&self) -> Vec<String> {
        self.contents().lines().map(str::to_string).collect()
    }
}

impl IoWrite for BufferSink {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.buf.lock().expect("sink lock").extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn lines_are_valid_json_with_fields() {
        let sink = BufferSink::new();
        let log = Logger::with_sink(Level::Debug, Box::new(sink.clone()));
        log.info("serve.submit")
            .str("digest", "deadbeef")
            .u64("req", 7)
            .bool("cached", false)
            .f64("wait_ms", 1.5)
            .emit();
        let lines = sink.lines();
        assert_eq!(lines.len(), 1);
        let v = parse(&lines[0]).expect("log line parses as JSON");
        assert_eq!(v.field("event").unwrap().as_str().unwrap(), "serve.submit");
        assert_eq!(v.field("digest").unwrap().as_str().unwrap(), "deadbeef");
        assert_eq!(v.field("req").unwrap().as_u64().unwrap(), 7);
        assert_eq!(v.field("level").unwrap().as_str().unwrap(), "info");
    }

    #[test]
    fn level_filtering_drops_lines() {
        let sink = BufferSink::new();
        let log = Logger::with_sink(Level::Warn, Box::new(sink.clone()));
        log.debug("dropped").emit();
        log.info("dropped-too").emit();
        log.warn("kept").emit();
        log.error("kept-too").u64("n", 1).emit();
        assert_eq!(sink.lines().len(), 2);
        assert!(log.enabled(Level::Error));
        assert!(!log.enabled(Level::Info));
    }

    #[test]
    fn disabled_logger_emits_nothing() {
        let log = Logger::disabled();
        assert!(!log.enabled(Level::Error));
        log.error("nope").emit();
    }

    #[test]
    fn seq_is_monotonic() {
        let sink = BufferSink::new();
        let log = Logger::with_sink(Level::Info, Box::new(sink.clone()));
        for _ in 0..3 {
            log.info("tick").emit();
        }
        let seqs: Vec<u64> = sink
            .lines()
            .iter()
            .map(|l| parse(l).unwrap().field("seq").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn level_parse() {
        assert_eq!(Level::parse("INFO"), Some(Level::Info));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("bogus"), None);
        assert!(Level::Error < Level::Trace, "ordering: more severe sorts first");
    }
}
