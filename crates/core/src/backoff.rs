//! Software exponential backoff (paper §V-A).
//!
//! "In order to avoid live locks, we also introduced a simple exponential
//! backoff manager in the software library, which exponentially increases
//! the backoff time according to transaction retry times." This module is
//! that manager: backoff after the *k*-th consecutive abort is a uniformly
//! random number of cycles in `[0, base · 2^min(k−1, cap_exp))`.

use asf_mem::rng::SimRng;

/// Exponential backoff manager; one per hardware thread.
#[derive(Clone, Debug)]
pub struct ExponentialBackoff {
    /// Base backoff window in cycles.
    pub base: u64,
    /// Maximum exponent — the window saturates at `base << cap_exp`.
    pub cap_exp: u32,
    retries: u32,
}

impl ExponentialBackoff {
    /// Default parameters used throughout the evaluation: a 64-cycle base
    /// window doubling up to 2^10 (≈ 65k cycles), a common choice for
    /// best-effort HTM retry loops.
    pub fn standard() -> ExponentialBackoff {
        ExponentialBackoff::new(64, 10)
    }

    /// Create a manager with the given base window and exponent cap.
    pub fn new(base: u64, cap_exp: u32) -> ExponentialBackoff {
        assert!(base > 0, "backoff base must be positive");
        ExponentialBackoff { base, cap_exp, retries: 0 }
    }

    /// Number of consecutive aborts so far.
    pub fn retries(&self) -> u32 {
        self.retries
    }

    /// Record an abort and draw the backoff delay (in cycles) before the
    /// next attempt.
    pub fn on_abort(&mut self, rng: &mut SimRng) -> u64 {
        self.retries = self.retries.saturating_add(1);
        let exp = (self.retries - 1).min(self.cap_exp);
        let window = saturating_shl(self.base, exp);
        rng.below(window.max(1))
    }

    /// Record a successful commit: the retry counter resets.
    pub fn on_commit(&mut self) {
        self.retries = 0;
    }

    /// Current window size in cycles (for inspection/tests).
    pub fn window(&self) -> u64 {
        let exp = self.retries.min(self.cap_exp);
        saturating_shl(self.base, exp)
    }
}

/// `base << exp` saturating at `u64::MAX` instead of wrapping. A plain
/// shift silently overflows in release builds for user-supplied
/// `base`/`cap_exp` combinations (e.g. `base = 1 << 60`, `cap_exp = 10`),
/// collapsing the window to a tiny value and defeating livelock avoidance.
fn saturating_shl(base: u64, exp: u32) -> u64 {
    if exp >= 64 || base > (u64::MAX >> exp) {
        u64::MAX
    } else {
        base << exp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_doubles_until_cap() {
        let mut b = ExponentialBackoff::new(16, 3);
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(b.window(), 16);
        for expect in [16u64, 32, 64, 128, 128, 128] {
            let d = b.on_abort(&mut rng);
            assert!(d < expect, "delay {d} outside window {expect}");
        }
        assert_eq!(b.window(), 16 << 3);
    }

    #[test]
    fn commit_resets() {
        let mut b = ExponentialBackoff::new(16, 4);
        let mut rng = SimRng::seed_from_u64(2);
        for _ in 0..5 {
            b.on_abort(&mut rng);
        }
        assert_eq!(b.retries(), 5);
        b.on_commit();
        assert_eq!(b.retries(), 0);
        assert_eq!(b.window(), 16);
    }

    #[test]
    fn delays_are_deterministic_per_seed() {
        let run = |seed| {
            let mut b = ExponentialBackoff::standard();
            let mut rng = SimRng::seed_from_u64(seed);
            (0..8).map(|_| b.on_abort(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn huge_base_and_cap_saturate_instead_of_wrapping() {
        // Regression: `base << exp` used to wrap for large user-supplied
        // parameters, shrinking the window (sometimes to a single cycle)
        // exactly when livelock pressure is highest. The window must be
        // monotone non-decreasing in the retry count, saturating at
        // `u64::MAX`.
        let mut b = ExponentialBackoff::new(1 << 60, 32);
        let mut rng = SimRng::seed_from_u64(9);
        let mut prev = b.window();
        assert_eq!(prev, 1 << 60);
        for _ in 0..40 {
            b.on_abort(&mut rng); // must not panic (debug) or wrap (release)
            let w = b.window();
            assert!(w >= prev, "window shrank from {prev} to {w}");
            prev = w;
        }
        assert_eq!(b.window(), u64::MAX);

        // Shift amounts ≥ 64 saturate too (would be UB-adjacent overflow).
        let mut b = ExponentialBackoff::new(2, 100);
        for _ in 0..80 {
            b.on_abort(&mut rng);
        }
        assert_eq!(b.window(), u64::MAX);
    }

    #[test]
    fn backoff_grows_on_average() {
        // With many samples, the mean delay after 8 retries should exceed
        // the mean after 1 (the livelock-avoidance property).
        let mut rng = SimRng::seed_from_u64(3);
        let mut early = 0u64;
        let mut late = 0u64;
        for _ in 0..200 {
            let mut b = ExponentialBackoff::standard();
            early += b.on_abort(&mut rng);
            for _ in 0..6 {
                b.on_abort(&mut rng);
            }
            late += b.on_abort(&mut rng);
        }
        assert!(late > early * 4, "late {late} should dwarf early {early}");
    }
}
