//! # asf-core — speculative sub-blocking state for ASF-style HTM
//!
//! This crate implements the contribution of *"Reducing False Transactional
//! Conflicts With Speculative Sub-blocking State"* (Nai & Lee, IPDPSW 2013):
//! conflict detection for an ASF-like hardware transactional memory at the
//! granularity of cache-line **sub-blocks**, with the coherence protocol left
//! untouched.
//!
//! ## Model
//!
//! Every L1 line touched by a transaction carries a [`spec::SpecState`]: the
//! byte-exact speculative read mask, write mask, and *dirty* mask (sub-blocks
//! known to have been speculatively written by another core). The three
//! systems evaluated in the paper are all derived views of this state,
//! selected by [`detector::DetectorKind`]:
//!
//! * `Baseline` — AMD ASF as specified: one SR and one SW bit per line,
//!   i.e. sub-blocking with a single sub-block;
//! * `SubBlock(n)` — the paper's technique: `SPEC`/`WR` bits per sub-block
//!   (Table I), including the dirty-state mechanism, piggy-back bits on data
//!   responses, retention of speculative metadata in lines invalidated by
//!   false WAR conflicts, and the deliberate coarse handling of WAW;
//! * `Perfect` — the paper's ideal system with zero false conflicts:
//!   byte-granularity oracle detection.
//!
//! Because coarsening is monotone (see `asf_mem::mask`), any conflict flagged
//! by `Perfect` is flagged by every `SubBlock(n)`, and any flagged by
//! `SubBlock(n)` is flagged by `Baseline` — the structural fact behind the
//! paper's Figure 8.
//!
//! The crate also provides the software [`backoff::ExponentialBackoff`]
//! manager the authors put in their TM library (§V-A) and the hardware
//! [`overhead`] model of §IV-E.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod detector;
pub mod overhead;
pub mod progress;
pub mod signature;
pub mod spec;
pub mod subblock;

pub use backoff::ExponentialBackoff;
pub use detector::{ConflictType, DetectorKind, ProbeKind, ProbeOutcome};
pub use progress::{ProgressMonitor, StallVerdict};
pub use signature::Signature;
pub use spec::SpecState;
pub use subblock::SubBlockState;
