//! Hardware overhead model (paper §IV-E).
//!
//! For `N` sub-blocks the design stores `2N` state bits per cache line; the
//! baseline ASF already stores 2 (SR, SW), so the *extra* cost is `2(N−1)`
//! bits per line. For the paper's 64 KB L1 with 64-byte lines and `N = 4`:
//! 1024 lines × 6 bits = 6144 bits = 0.75 KB = **1.17%** of the L1 data
//! capacity — the headline implementability argument.

use crate::detector::DetectorKind;
use asf_mem::geometry::CacheGeometry;

/// Computed hardware overhead of a detector on a given L1 geometry.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Overhead {
    /// State bits per cache line for this detector.
    pub bits_per_line: u32,
    /// Extra bits per line relative to baseline ASF (2 bits).
    pub extra_bits_per_line: u32,
    /// Total extra storage in bytes across the L1.
    pub extra_bytes: usize,
    /// Extra storage as a fraction of L1 data capacity (0.0117 ⇒ 1.17%).
    pub fraction_of_l1: f64,
}

/// Baseline ASF state bits per line (SR + SW).
pub const BASELINE_BITS_PER_LINE: u32 = 2;

/// Compute the overhead of `kind` on an L1 with geometry `l1`.
///
/// `Perfect` is an oracle, not a hardware design; its "overhead" is reported
/// as byte-granularity sub-blocking (2 bits per byte) for reference.
pub fn overhead(kind: DetectorKind, l1: CacheGeometry) -> Overhead {
    let n = kind.sub_blocks() as u32;
    let bits_per_line = 2 * n;
    let extra_bits_per_line = bits_per_line.saturating_sub(BASELINE_BITS_PER_LINE);
    let lines = l1.lines();
    let extra_bits_total = extra_bits_per_line as usize * lines;
    let extra_bytes = extra_bits_total / 8;
    Overhead {
        bits_per_line,
        extra_bits_per_line,
        extra_bytes,
        fraction_of_l1: extra_bits_total as f64 / 8.0 / l1.size_bytes as f64,
    }
}

/// Piggy-back payload per data response: one bit per sub-block (paper:
/// "for a typical configuration of four sub-blocks, the extra number of
/// status bits is four").
pub fn piggyback_bits(kind: DetectorKind) -> u32 {
    kind.sub_blocks() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_l1() -> CacheGeometry {
        CacheGeometry::new(64 * 1024, 2)
    }

    #[test]
    fn paper_numbers_for_four_subblocks() {
        let o = overhead(DetectorKind::SubBlock(4), paper_l1());
        assert_eq!(o.bits_per_line, 8);
        assert_eq!(o.extra_bits_per_line, 6);
        // 1024 lines × 6 bits = 6144 bits = 768 bytes = 0.75 KB.
        assert_eq!(o.extra_bytes, 768);
        // 768 / 65536 = 1.171875 %.
        assert!((o.fraction_of_l1 - 0.0117).abs() < 2e-4);
    }

    #[test]
    fn baseline_has_zero_extra() {
        let o = overhead(DetectorKind::Baseline, paper_l1());
        assert_eq!(o.bits_per_line, 2);
        assert_eq!(o.extra_bits_per_line, 0);
        assert_eq!(o.extra_bytes, 0);
        assert_eq!(o.fraction_of_l1, 0.0);
    }

    #[test]
    fn overhead_scales_linearly_in_subblocks() {
        let o8 = overhead(DetectorKind::SubBlock(8), paper_l1());
        let o16 = overhead(DetectorKind::SubBlock(16), paper_l1());
        assert_eq!(o8.extra_bits_per_line, 14);
        assert_eq!(o16.extra_bits_per_line, 30);
        assert!(o16.extra_bytes > 2 * o8.extra_bytes);
    }

    #[test]
    fn piggyback_matches_subblock_count() {
        assert_eq!(piggyback_bits(DetectorKind::SubBlock(4)), 4);
        assert_eq!(piggyback_bits(DetectorKind::SubBlock(16)), 16);
        assert_eq!(piggyback_bits(DetectorKind::Baseline), 1);
    }
}
