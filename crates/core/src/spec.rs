//! Per-line speculative state.
//!
//! The state is kept **byte-exact** regardless of the active detector: the
//! read/write masks are the ground truth from which (a) the detector derives
//! its coarse view at check time and (b) the statistics layer classifies
//! every detected conflict as *true* or *false*. The dirty mask is stored in
//! expanded form (whole sub-blocks), mirroring what the hardware's per-sub-
//! block `SPEC=0,WR=1` encoding can represent.

use asf_mem::mask::AccessMask;

/// Speculative metadata attached to one cache line on behalf of the local
/// running transaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SpecState {
    /// Bytes speculatively read by the local transaction.
    pub read_mask: AccessMask,
    /// Bytes speculatively written by the local transaction.
    pub write_mask: AccessMask,
    /// Bytes belonging to sub-blocks that a *remote* transaction has
    /// speculatively written without a true conflict (paper §IV-C). Data
    /// under these bytes is unreliable: a local access hitting them must be
    /// treated as an L1 miss.
    pub dirty_mask: AccessMask,
}

impl SpecState {
    /// Fresh, empty state.
    pub const EMPTY: SpecState = SpecState {
        read_mask: AccessMask::EMPTY,
        write_mask: AccessMask::EMPTY,
        dirty_mask: AccessMask::EMPTY,
    };

    /// Has the local transaction touched this line speculatively?
    #[inline]
    pub fn is_speculative(&self) -> bool {
        self.read_mask.any() || self.write_mask.any()
    }

    /// Is there nothing recorded at all (speculative or dirty)?
    #[inline]
    pub fn is_empty(&self) -> bool {
        !self.is_speculative() && self.dirty_mask.is_empty()
    }

    /// Record a speculative read of `mask`.
    ///
    /// Reading clears any dirty marking on the covered bytes *only* via
    /// [`SpecState::clear_dirty`] — the machine first services the forced
    /// miss, then calls `clear_dirty` + `mark_read` (paper §IV-D-1: "the
    /// requesting core clears the dirty state of this sub-block by setting
    /// the SPEC bit to 1 and the WR bit to 0").
    #[inline]
    pub fn mark_read(&mut self, mask: AccessMask) {
        debug_assert!(
            !mask.overlaps(self.dirty_mask),
            "reading dirty bytes without refetch; machine must clear dirty first"
        );
        self.read_mask |= mask;
    }

    /// Record a speculative write of `mask`. Writing one's own dirty bytes
    /// overwrites them, so the dirty marking is dropped for those bytes.
    #[inline]
    pub fn mark_write(&mut self, mask: AccessMask) {
        self.write_mask |= mask;
        self.dirty_mask = self.dirty_mask & !mask;
    }

    /// Mark `mask` (already expanded to sub-block boundaries by the caller)
    /// as dirty, per piggy-back bits in a data response. Bytes the local
    /// transaction has itself written stay trustworthy (they are served from
    /// the local write buffer), so they are excluded.
    #[inline]
    pub fn mark_dirty(&mut self, mask: AccessMask) {
        self.dirty_mask |= mask & !self.write_mask;
    }

    /// Clear dirty marking for `mask` after the machine refetched the data.
    #[inline]
    pub fn clear_dirty(&mut self, mask: AccessMask) {
        self.dirty_mask = self.dirty_mask & !mask;
    }

    /// Does a local access of `mask` hit dirty (unreliable) bytes?
    #[inline]
    pub fn hits_dirty(&self, mask: AccessMask) -> bool {
        mask.overlaps(self.dirty_mask)
    }

    /// Merge another record of the same line (used when a line invalidated
    /// with retained metadata is refetched and the side-table entry is folded
    /// back into the live line).
    #[inline]
    pub fn merge(&mut self, other: &SpecState) {
        self.read_mask |= other.read_mask;
        self.write_mask |= other.write_mask;
        self.dirty_mask |= other.dirty_mask & !self.write_mask;
    }

    /// Gang-clear the *speculative* bits at commit or abort (paper
    /// §IV-D-3), preserving the dirty mask.
    ///
    /// This asymmetry is exactly why Table I encodes Dirty as `SPEC=0,
    /// WR=1`: the commit/abort gang-clear resets sub-blocks with `SPEC=1`,
    /// so dirty markings — which describe the *data* (remotely written,
    /// unreliable), not the finished transaction — survive into the next
    /// transaction and are only cleared by the refetch a dirty hit forces.
    /// Dropping them at commit would let the very next transaction read a
    /// stale line without a coherence probe (a Figure 6 hazard).
    #[inline]
    pub fn gang_clear(&mut self) {
        self.read_mask = AccessMask::EMPTY;
        self.write_mask = AccessMask::EMPTY;
    }

    /// Clear everything including dirty marks (used when the line itself
    /// is discarded).
    #[inline]
    pub fn clear_all(&mut self) {
        *self = SpecState::EMPTY;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(off: usize, len: usize) -> AccessMask {
        AccessMask::from_range(off, len)
    }

    #[test]
    fn empty_state() {
        let s = SpecState::EMPTY;
        assert!(s.is_empty());
        assert!(!s.is_speculative());
    }

    #[test]
    fn mark_read_write_accumulate() {
        let mut s = SpecState::EMPTY;
        s.mark_read(m(0, 4));
        s.mark_read(m(8, 4));
        s.mark_write(m(16, 8));
        assert_eq!(s.read_mask, m(0, 4) | m(8, 4));
        assert_eq!(s.write_mask, m(16, 8));
        assert!(s.is_speculative());
    }

    #[test]
    fn write_clears_own_dirty_bytes() {
        let mut s = SpecState::EMPTY;
        s.mark_dirty(m(0, 16));
        s.mark_write(m(0, 8));
        assert_eq!(s.dirty_mask, m(8, 8));
        assert_eq!(s.write_mask, m(0, 8));
    }

    #[test]
    fn dirty_never_covers_own_writes() {
        let mut s = SpecState::EMPTY;
        s.mark_write(m(0, 8));
        s.mark_dirty(m(0, 16));
        assert_eq!(s.dirty_mask, m(8, 8));
    }

    #[test]
    fn hits_dirty_detects_overlap() {
        let mut s = SpecState::EMPTY;
        s.mark_dirty(m(16, 16));
        assert!(s.hits_dirty(m(20, 4)));
        assert!(!s.hits_dirty(m(0, 16)));
        assert!(!s.hits_dirty(m(32, 8)));
    }

    #[test]
    fn clear_dirty_then_read() {
        let mut s = SpecState::EMPTY;
        s.mark_dirty(m(16, 16));
        s.clear_dirty(m(16, 16));
        assert!(!s.hits_dirty(m(16, 4)));
        s.mark_read(m(16, 4));
        assert_eq!(s.read_mask, m(16, 4));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "dirty")]
    fn reading_dirty_bytes_panics_in_debug() {
        let mut s = SpecState::EMPTY;
        s.mark_dirty(m(0, 16));
        s.mark_read(m(4, 4));
    }

    #[test]
    fn merge_folds_retained_state() {
        let mut live = SpecState::EMPTY;
        live.mark_write(m(0, 8));
        let mut retained = SpecState::EMPTY;
        retained.mark_read(m(8, 8));
        retained.mark_dirty(m(0, 16)); // overlaps live write → filtered
        live.merge(&retained);
        assert_eq!(live.read_mask, m(8, 8));
        assert_eq!(live.write_mask, m(0, 8));
        assert_eq!(live.dirty_mask, m(8, 8));
    }

    #[test]
    fn gang_clear_preserves_dirty() {
        let mut s = SpecState::EMPTY;
        s.mark_read(m(0, 8));
        s.mark_write(m(8, 8));
        s.mark_dirty(m(32, 16));
        s.gang_clear();
        assert!(!s.is_speculative(), "speculative bits cleared");
        assert_eq!(s.dirty_mask, m(32, 16), "dirty marks survive commit");
        assert!(s.hits_dirty(m(40, 4)));
        s.clear_all();
        assert!(s.is_empty());
    }
}
