//! Table I — the per-sub-block state encoding.
//!
//! The hardware stores two bits per sub-block:
//!
//! | SPEC | WR | State |
//! |------|----|-------------------------|
//! | 0    | 0  | Non-speculative         |
//! | 0    | 1  | Dirty                   |
//! | 1    | 0  | Speculative Read (S-RD) |
//! | 1    | 1  | Speculative Write (S-WR)|
//!
//! The simulator keeps byte-exact masks (see [`crate::spec::SpecState`]) and
//! derives this encoding on demand; [`SubBlockState::of_line`] is that
//! derivation. It is used by diagnostics, the Figure 6/7 walkthroughs and the
//! tests that pin the implementation to the paper's table.

use crate::spec::SpecState;
use asf_mem::addr::LINE_SIZE;
use asf_mem::mask::AccessMask;
use core::fmt;

/// State of one sub-block (Table I).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum SubBlockState {
    /// SPEC=0, WR=0 — never speculatively accessed.
    #[default]
    NonSpeculative,
    /// SPEC=0, WR=1 — remotely speculatively written; local data unreliable.
    Dirty,
    /// SPEC=1, WR=0 — speculatively read by the local transaction.
    SpeculativeRead,
    /// SPEC=1, WR=1 — speculatively written by the local transaction.
    SpeculativeWrite,
}

impl SubBlockState {
    /// The `(SPEC, WR)` bit pair of this state.
    #[inline]
    pub fn bits(self) -> (bool, bool) {
        match self {
            SubBlockState::NonSpeculative => (false, false),
            SubBlockState::Dirty => (false, true),
            SubBlockState::SpeculativeRead => (true, false),
            SubBlockState::SpeculativeWrite => (true, true),
        }
    }

    /// Decode a `(SPEC, WR)` bit pair.
    #[inline]
    pub fn from_bits(spec: bool, wr: bool) -> SubBlockState {
        match (spec, wr) {
            (false, false) => SubBlockState::NonSpeculative,
            (false, true) => SubBlockState::Dirty,
            (true, false) => SubBlockState::SpeculativeRead,
            (true, true) => SubBlockState::SpeculativeWrite,
        }
    }

    /// Derive the per-sub-block states of a line from its byte-exact
    /// speculative record, at `sub_blocks` granularity.
    ///
    /// Precedence within a sub-block mirrors the hardware: a speculative
    /// write dominates (S-WR), then a speculative read (S-RD), then a dirty
    /// marking, else non-speculative. (A sub-block both read and remotely
    /// dirtied cannot occur: the machine refetches before reading dirty
    /// bytes, clearing the marking.)
    pub fn of_line(state: &SpecState, sub_blocks: usize) -> Vec<SubBlockState> {
        let w = state.write_mask.to_subblock_bits(sub_blocks);
        let r = state.read_mask.to_subblock_bits(sub_blocks);
        let d = state.dirty_mask.to_subblock_bits(sub_blocks);
        (0..sub_blocks)
            .map(|i| {
                let bit = 1u64 << i;
                if w & bit != 0 {
                    SubBlockState::SpeculativeWrite
                } else if r & bit != 0 {
                    SubBlockState::SpeculativeRead
                } else if d & bit != 0 {
                    SubBlockState::Dirty
                } else {
                    SubBlockState::NonSpeculative
                }
            })
            .collect()
    }

    /// Render a line's sub-block states compactly, e.g. `[W R . D]`.
    pub fn render_line(state: &SpecState, sub_blocks: usize) -> String {
        let mut out = String::with_capacity(2 * sub_blocks + 2);
        out.push('[');
        for (i, s) in SubBlockState::of_line(state, sub_blocks).iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push(match s {
                SubBlockState::NonSpeculative => '.',
                SubBlockState::Dirty => 'D',
                SubBlockState::SpeculativeRead => 'R',
                SubBlockState::SpeculativeWrite => 'W',
            });
        }
        out.push(']');
        out
    }

    /// Byte mask covered by one sub-block at the given granularity.
    pub fn mask_of(index: usize, sub_blocks: usize) -> AccessMask {
        assert!(index < sub_blocks);
        let bytes = LINE_SIZE / sub_blocks;
        AccessMask::from_range(index * bytes, bytes)
    }
}

impl fmt::Display for SubBlockState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SubBlockState::NonSpeculative => "Non-speculative",
            SubBlockState::Dirty => "Dirty",
            SubBlockState::SpeculativeRead => "S-RD",
            SubBlockState::SpeculativeWrite => "S-WR",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_encoding_is_exhaustive() {
        // Pin the exact Table I truth table.
        assert_eq!(SubBlockState::from_bits(false, false), SubBlockState::NonSpeculative);
        assert_eq!(SubBlockState::from_bits(false, true), SubBlockState::Dirty);
        assert_eq!(SubBlockState::from_bits(true, false), SubBlockState::SpeculativeRead);
        assert_eq!(SubBlockState::from_bits(true, true), SubBlockState::SpeculativeWrite);
        for s in [
            SubBlockState::NonSpeculative,
            SubBlockState::Dirty,
            SubBlockState::SpeculativeRead,
            SubBlockState::SpeculativeWrite,
        ] {
            let (spec, wr) = s.bits();
            assert_eq!(SubBlockState::from_bits(spec, wr), s);
        }
    }

    #[test]
    fn of_line_derives_states() {
        let mut st = SpecState::EMPTY;
        st.mark_write(AccessMask::from_range(0, 8)); // sub-block 0 of 4
        st.mark_read(AccessMask::from_range(16, 4)); // sub-block 1
        st.mark_dirty(AccessMask::from_range(48, 16)); // sub-block 3
        let v = SubBlockState::of_line(&st, 4);
        assert_eq!(
            v,
            vec![
                SubBlockState::SpeculativeWrite,
                SubBlockState::SpeculativeRead,
                SubBlockState::NonSpeculative,
                SubBlockState::Dirty,
            ]
        );
        assert_eq!(SubBlockState::render_line(&st, 4), "[W R . D]");
    }

    #[test]
    fn write_dominates_read_in_same_subblock() {
        let mut st = SpecState::EMPTY;
        st.mark_read(AccessMask::from_range(0, 4));
        st.mark_write(AccessMask::from_range(4, 4));
        let v = SubBlockState::of_line(&st, 4);
        assert_eq!(v[0], SubBlockState::SpeculativeWrite);
    }

    #[test]
    fn mask_of_partitions_the_line() {
        for n in [1usize, 2, 4, 8, 16, 64] {
            let mut acc = AccessMask::EMPTY;
            for i in 0..n {
                let m = SubBlockState::mask_of(i, n);
                assert!(!acc.overlaps(m), "sub-blocks overlap");
                acc |= m;
            }
            assert_eq!(acc, AccessMask::FULL);
        }
    }
}
