//! Forward-progress monitor for best-effort HTM.
//!
//! ASF gives no hardware progress guarantee: the paper's §V-A backoff
//! manager and the software fallback lock exist precisely because
//! transactions can abort each other indefinitely. This module tracks
//! per-core commit age and consecutive-abort streaks so that, when the
//! simulation watchdog trips, the failure can be *classified* instead of
//! merely reported:
//!
//! * **livelock** — every core that still has transactional work is
//!   stuck in an abort/retry cycle and nobody has committed recently;
//! * **starvation** — some cores keep committing while at least one other
//!   core is locked out (long abort streak, stale last-commit).
//!
//! The monitor is passive bookkeeping: it draws no randomness and never
//! influences scheduling, so enabling it cannot perturb a run.

/// Progress bookkeeping for one core.
#[derive(Clone, Debug, Default)]
pub struct CoreProgress {
    /// Transactions committed by this core (hardware or fallback).
    pub commits: u64,
    /// Simulation step of the most recent commit, if any.
    pub last_commit_step: Option<u64>,
    /// Consecutive aborts since the last commit (current streak).
    pub streak: u32,
    /// Attempts begun since the last commit.
    pub attempts_since_commit: u64,
}

/// Watchdog verdict: what kind of progress failure does the per-core
/// evidence point at?
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StallVerdict {
    /// No core with outstanding transactional work has committed within
    /// the observation window — the classic mutual-abort cycle.
    Livelock,
    /// The system as a whole makes progress, but at least one core is
    /// persistently locked out (long abort streak, stale commit age).
    Starvation,
    /// The evidence is mixed (e.g. the budget was simply too small for
    /// the workload); no per-core pathology stands out.
    Indeterminate,
}

impl StallVerdict {
    /// Human-readable label used in diagnostic dumps.
    pub fn label(&self) -> &'static str {
        match self {
            StallVerdict::Livelock => "livelock",
            StallVerdict::Starvation => "starvation",
            StallVerdict::Indeterminate => "indeterminate",
        }
    }
}

/// Per-core forward-progress monitor. One instance per machine.
#[derive(Clone, Debug)]
pub struct ProgressMonitor {
    cores: Vec<CoreProgress>,
    /// Streak length at which a core counts as stalled; scaled with the
    /// *system* core count (see [`ProgressMonitor::with_system_cores`]).
    streak_threshold: u32,
}

/// A core counts as *stalled* once its current abort streak reaches this
/// many consecutive aborts without an intervening commit — the base value,
/// tuned for the paper's 8-core machine. Larger systems scale it up (see
/// [`scaled_streak_threshold`]): with more contention peers, transient
/// streaks of this length are routine, not pathological.
pub const STREAK_THRESHOLD: u32 = 4;

/// The stalled-streak threshold for a system of `system_cores` cores:
/// [`STREAK_THRESHOLD`] at 8 cores and below, growing linearly with the
/// number of potential abort sources above that (256 cores → 128). At 8
/// cores and below this is exactly the paper-era constant, so existing
/// verdicts are unchanged.
pub fn scaled_streak_threshold(system_cores: usize) -> u32 {
    STREAK_THRESHOLD.max((system_cores / 2) as u32)
}

/// The commit-age recency window for a system of `system_cores` cores:
/// `base` (the 8-core tuning) stretched proportionally to the core count.
/// Scheduler steps are shared by all cores, so at 256 cores each core is
/// scheduled 1/32 as often per step — a commit age that means "idle" on 8
/// cores is ordinary scheduling latency there.
pub fn scaled_window(base: u64, system_cores: usize) -> u64 {
    base.saturating_mul(((system_cores as u64) / 8).max(1))
}

impl ProgressMonitor {
    /// Monitor for `n` cores of an `n`-core system.
    pub fn new(n: usize) -> ProgressMonitor {
        ProgressMonitor::with_system_cores(n, n)
    }

    /// Monitor for `n` local cores inside a system of `system_cores` total
    /// cores. The shard-parallel engine monitors each shard's cores locally
    /// but thresholds must reflect system-wide contention, or a large
    /// machine's routine abort streaks read as livelock.
    pub fn with_system_cores(n: usize, system_cores: usize) -> ProgressMonitor {
        ProgressMonitor {
            cores: vec![CoreProgress::default(); n],
            streak_threshold: scaled_streak_threshold(system_cores.max(n)),
        }
    }

    /// The streak length at which this monitor calls a core stalled.
    pub fn streak_threshold(&self) -> u32 {
        self.streak_threshold
    }

    /// Record that `core` began a transaction attempt.
    pub fn note_attempt(&mut self, core: usize) {
        self.cores[core].attempts_since_commit += 1;
    }

    /// Record that `core` aborted an attempt.
    pub fn note_abort(&mut self, core: usize) {
        self.cores[core].streak = self.cores[core].streak.saturating_add(1);
    }

    /// Record that `core` committed a transaction at simulation `step`.
    pub fn note_commit(&mut self, core: usize, step: u64) {
        let c = &mut self.cores[core];
        c.commits += 1;
        c.last_commit_step = Some(step);
        c.streak = 0;
        c.attempts_since_commit = 0;
    }

    /// Bookkeeping for one core (diagnostic dumps, tests).
    pub fn core(&self, i: usize) -> &CoreProgress {
        &self.cores[i]
    }

    /// Number of cores tracked.
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// True when tracking no cores.
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// Is `core` stalled: a long abort streak, or attempts pending with no
    /// commit inside the last `window` steps (ending at `now`)?
    pub fn is_stalled(&self, core: usize, now: u64, window: u64) -> bool {
        let c = &self.cores[core];
        let commit_stale = match c.last_commit_step {
            Some(s) => now.saturating_sub(s) > window,
            None => true, // never committed at all
        };
        c.streak >= self.streak_threshold || (c.attempts_since_commit > 0 && commit_stale)
    }

    /// Did `core` commit within the last `window` steps ending at `now`?
    pub fn is_progressing(&self, core: usize, now: u64, window: u64) -> bool {
        matches!(self.cores[core].last_commit_step,
                 Some(s) if now.saturating_sub(s) <= window)
    }

    /// Classify a watchdog trip at step `now`. `active[i]` marks cores
    /// that still have transactional work outstanding (idle/finished cores
    /// can neither stall nor starve). `window` is the recency horizon in
    /// steps for "has committed lately".
    pub fn classify(&self, active: &[bool], now: u64, window: u64) -> StallVerdict {
        assert_eq!(active.len(), self.cores.len());
        let mut any_stalled = false;
        let mut any_progressing = false;
        for (i, live) in active.iter().enumerate() {
            if !live {
                continue;
            }
            if self.is_stalled(i, now, window) {
                any_stalled = true;
            } else if self.is_progressing(i, now, window) {
                any_progressing = true;
            }
        }
        match (any_stalled, any_progressing) {
            (true, true) => StallVerdict::Starvation,
            (true, false) => StallVerdict::Livelock,
            _ => StallVerdict::Indeterminate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_resets_streak_and_age() {
        let mut m = ProgressMonitor::new(2);
        m.note_attempt(0);
        m.note_abort(0);
        m.note_abort(0);
        assert_eq!(m.core(0).streak, 2);
        m.note_commit(0, 500);
        assert_eq!(m.core(0).streak, 0);
        assert_eq!(m.core(0).attempts_since_commit, 0);
        assert_eq!(m.core(0).commits, 1);
        assert_eq!(m.core(0).last_commit_step, Some(500));
    }

    #[test]
    fn all_stalled_is_livelock() {
        let mut m = ProgressMonitor::new(3);
        for c in 0..3 {
            m.note_attempt(c);
            for _ in 0..STREAK_THRESHOLD {
                m.note_abort(c);
            }
        }
        assert_eq!(m.classify(&[true; 3], 10_000, 1_000), StallVerdict::Livelock);
    }

    #[test]
    fn one_starved_among_committers_is_starvation() {
        let mut m = ProgressMonitor::new(3);
        // Cores 1 and 2 commit recently; core 0 only aborts.
        m.note_attempt(0);
        for _ in 0..STREAK_THRESHOLD + 2 {
            m.note_abort(0);
        }
        m.note_commit(1, 9_900);
        m.note_commit(2, 9_950);
        assert_eq!(m.classify(&[true; 3], 10_000, 1_000), StallVerdict::Starvation);
    }

    #[test]
    fn inactive_cores_are_ignored() {
        let mut m = ProgressMonitor::new(2);
        m.note_attempt(0);
        for _ in 0..STREAK_THRESHOLD {
            m.note_abort(0);
        }
        // Core 1 is done — its silence must not turn livelock into anything
        // else, and a lone stalled active core is a livelock.
        assert_eq!(m.classify(&[true, false], 10_000, 1_000), StallVerdict::Livelock);
    }

    #[test]
    fn healthy_run_is_indeterminate() {
        let mut m = ProgressMonitor::new(2);
        m.note_commit(0, 9_990);
        m.note_commit(1, 9_995);
        assert_eq!(m.classify(&[true, true], 10_000, 1_000), StallVerdict::Indeterminate);
    }

    #[test]
    fn thresholds_scale_with_system_core_count() {
        // The 8-core tuning is preserved exactly...
        assert_eq!(scaled_streak_threshold(1), STREAK_THRESHOLD);
        assert_eq!(scaled_streak_threshold(8), STREAK_THRESHOLD);
        assert_eq!(scaled_window(1024, 8), 1024);
        // ...and large systems get proportionally more headroom.
        assert_eq!(scaled_streak_threshold(256), 128);
        assert_eq!(scaled_window(1024, 256), 32 * 1024);
    }

    #[test]
    fn large_system_tolerates_routine_streaks() {
        // A 16-core shard inside a 256-core system: a streak that would be
        // "stalled" on the 8-core machine is routine contention at scale.
        let mut m = ProgressMonitor::with_system_cores(16, 256);
        assert_eq!(m.streak_threshold(), 128);
        m.note_attempt(0);
        for _ in 0..STREAK_THRESHOLD + 4 {
            m.note_abort(0);
        }
        m.note_commit(0, 9_000); // committed recently, streak restarts below
        m.note_attempt(0);
        for _ in 0..32 {
            m.note_abort(0);
        }
        assert!(
            !m.is_stalled(0, 10_000, scaled_window(1_000, 256)),
            "a 32-abort streak with a recent commit is not a stall at 256 cores"
        );
        // But the old 8-core threshold would have called it one.
        const { assert!(32 >= STREAK_THRESHOLD) };
    }

    #[test]
    fn stale_commit_with_pending_attempts_counts_as_stalled() {
        let mut m = ProgressMonitor::new(1);
        m.note_commit(0, 100);
        m.note_attempt(0);
        assert!(m.is_stalled(0, 10_000, 1_000));
        assert!(!m.is_progressing(0, 10_000, 1_000));
    }
}
