//! Signature-based conflict detection (LogTM-SE / Bulk style, paper §II).
//!
//! LogTM-class systems summarise a transaction's read and write sets in
//! per-core **Bloom-filter signatures** over line addresses and test
//! incoming probes against them. Compared to ASF's per-line bits this
//! decouples conflict state from the cache (no capacity aborts from
//! associativity), but it introduces a different source of false
//! conflicts: **hash aliasing** — unrelated addresses that map onto the
//! same filter bits — on top of the line granularity it shares with
//! baseline ASF. The `signatures` experiment quantifies that trade-off
//! against speculative sub-blocking.
//!
//! The filter is a standard partitioned Bloom filter: `k` hash functions,
//! each owning `bits/k` bits, as in the LogTM-SE hardware proposal.

use asf_mem::addr::LineAddr;

/// Upper bound on hash functions per signature: lets the word-merge scratch
/// live on the stack (no per-probe allocation). Hardware proposals use ≤ 8.
pub const MAX_HASHES: usize = 64;

/// A Bloom-filter address signature.
///
/// The filter is **generation-tagged**: every storage word carries the
/// epoch in which it was last written, and a word participates in lookups
/// only when its stamp matches the current epoch. [`Signature::clear`] just
/// bumps the epoch — an O(1) logical gang-clear, matching the single-cycle
/// hardware flash-clear — so commit/abort teardown never walks the filter.
#[derive(Clone, Debug)]
pub struct Signature {
    bits: Vec<u64>,
    /// Per-word generation stamp; `bits[i]` is live iff `stamps[i] == epoch`.
    stamps: Vec<u64>,
    /// Current generation; bumped by `clear`, never reused (u64 cannot wrap
    /// in any realistic run).
    epoch: u64,
    num_bits: usize,
    hashes: u32,
    inserted: u64,
}

#[inline]
fn mix(line: LineAddr, salt: u64) -> u64 {
    // SplitMix-style finalizer over (line, salt) — cheap and well spread.
    let mut z = line.0 ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Signature {
    /// Create an empty signature of `num_bits` bits with `hashes`
    /// partitioned hash functions.
    ///
    /// # Panics
    /// If `num_bits` is not a positive multiple of `hashes`, or `hashes`
    /// is zero.
    pub fn new(num_bits: usize, hashes: u32) -> Signature {
        assert!(hashes >= 1, "need at least one hash function");
        assert!(
            hashes as usize <= MAX_HASHES,
            "at most {MAX_HASHES} hash functions supported, got {hashes}"
        );
        assert!(
            num_bits >= hashes as usize && num_bits.is_multiple_of(hashes as usize),
            "bits ({num_bits}) must be a positive multiple of hashes ({hashes})"
        );
        Signature {
            bits: vec![0; num_bits.div_ceil(64)],
            stamps: vec![0; num_bits.div_ceil(64)],
            epoch: 1,
            num_bits,
            hashes,
            inserted: 0,
        }
    }

    /// Hardware-typical configuration: 1024 bits, 4 hash functions.
    pub fn logtm_se() -> Signature {
        Signature::new(1024, 4)
    }

    /// Hash `line` and merge the resulting bit positions into per-word
    /// `(word index, bit mask)` chunks written to `out`, returning how many
    /// chunks are live. Small partitions land several hash positions in the
    /// same `u64` word; merging them lets [`Signature::insert`] and
    /// [`Signature::maybe_contains`] run one stamp check and one word-wide
    /// AND/OR per *distinct word* instead of one per bit position.
    #[inline]
    fn merged_words(&self, line: LineAddr, out: &mut [(usize, u64); MAX_HASHES]) -> usize {
        let part = self.num_bits / self.hashes as usize;
        let mut n = 0;
        'hash: for h in 0..self.hashes {
            let idx = (mix(line, h as u64 + 1) % part as u64) as usize;
            let pos = h as usize * part + idx;
            let (word, bit) = (pos / 64, 1u64 << (pos % 64));
            for chunk in out[..n].iter_mut() {
                if chunk.0 == word {
                    chunk.1 |= bit;
                    continue 'hash;
                }
            }
            out[n] = (word, bit);
            n += 1;
        }
        n
    }

    /// Insert a line address. Stale words (from before the last epoch bump)
    /// are lazily re-zeroed on first touch.
    pub fn insert(&mut self, line: LineAddr) {
        let mut words = [(0usize, 0u64); MAX_HASHES];
        let n = self.merged_words(line, &mut words);
        for &(word, chunk) in &words[..n] {
            if self.stamps[word] != self.epoch {
                self.stamps[word] = self.epoch;
                self.bits[word] = 0;
            }
            self.bits[word] |= chunk;
        }
        self.inserted += 1;
    }

    /// Membership test: false ⇒ definitely absent; true ⇒ present *or* an
    /// alias (the signature's false-conflict source). One word-wide AND per
    /// distinct storage word.
    pub fn maybe_contains(&self, line: LineAddr) -> bool {
        let mut words = [(0usize, 0u64); MAX_HASHES];
        let n = self.merged_words(line, &mut words);
        words[..n].iter().all(|&(word, chunk)| {
            self.stamps[word] == self.epoch && self.bits[word] & chunk == chunk
        })
    }

    /// Clear all bits (commit/abort gang-clear — single-cycle in hardware).
    /// O(1): bumps the generation instead of zeroing storage.
    pub fn clear(&mut self) {
        self.epoch += 1;
        self.inserted = 0;
    }

    /// Number of insert operations since the last clear (with repeats).
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Fraction of filter bits set — the density that drives the
    /// false-positive rate (≈ density^k for a partitioned filter).
    pub fn density(&self) -> f64 {
        let set: u32 = self
            .bits
            .iter()
            .zip(&self.stamps)
            .filter(|&(_, &s)| s == self.epoch)
            .map(|(w, _)| w.count_ones())
            .sum();
        set as f64 / self.num_bits as f64
    }

    /// Capacity in bits.
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asf_mem::addr::Addr;

    fn line(n: u64) -> LineAddr {
        Addr(n * 64).line()
    }

    #[test]
    fn no_false_negatives() {
        let mut s = Signature::new(256, 4);
        for n in 0..40 {
            s.insert(line(n * 7 + 3));
        }
        for n in 0..40 {
            assert!(s.maybe_contains(line(n * 7 + 3)));
        }
    }

    #[test]
    fn empty_signature_contains_nothing() {
        let s = Signature::logtm_se();
        for n in 0..100 {
            assert!(!s.maybe_contains(line(n)));
        }
        assert_eq!(s.density(), 0.0);
    }

    #[test]
    fn clear_resets() {
        let mut s = Signature::new(128, 2);
        s.insert(line(1));
        assert!(s.maybe_contains(line(1)));
        assert!(s.inserted() == 1);
        s.clear();
        assert!(!s.maybe_contains(line(1)));
        assert_eq!(s.density(), 0.0);
    }

    #[test]
    fn generations_stay_isolated_across_many_clears() {
        // The O(1) epoch clear must behave exactly like a physical zeroing:
        // nothing inserted in a previous generation may leak into the next.
        let mut s = Signature::new(128, 2);
        for round in 0..100 {
            s.insert(line(round));
            assert!(s.maybe_contains(line(round)));
            assert!(s.density() > 0.0);
            s.clear();
            assert!(!s.maybe_contains(line(round)));
            assert_eq!(s.density(), 0.0);
            assert_eq!(s.inserted(), 0);
        }
    }

    #[test]
    fn aliasing_rate_tracks_size() {
        // Insert 64 lines, then probe 2000 lines NOT inserted: the small
        // filter aliases far more than the large one.
        let alias_rate = |bits: usize| {
            let mut s = Signature::new(bits, 4);
            for n in 0..64 {
                s.insert(line(n));
            }
            let hits = (1000..3000).filter(|&n| s.maybe_contains(line(n))).count();
            hits as f64 / 2000.0
        };
        let small = alias_rate(256);
        let large = alias_rate(4096);
        assert!(small > large, "small {small} vs large {large}");
        assert!(small > 0.05, "256-bit filter with 64 lines must alias: {small}");
        assert!(large < 0.05, "4096-bit filter must rarely alias: {large}");
    }

    #[test]
    fn density_grows_with_inserts() {
        let mut s = Signature::new(512, 4);
        let mut last = 0.0;
        for n in 0..32 {
            s.insert(line(n * 13));
            let d = s.density();
            assert!(d >= last);
            last = d;
        }
        assert!(last > 0.1);
    }

    #[test]
    #[should_panic(expected = "multiple of hashes")]
    fn rejects_unbalanced_partitions() {
        let _ = Signature::new(100, 3);
    }

    #[test]
    fn same_word_positions_merge_into_one_chunk() {
        // 64 bits with 4 hashes: every partition is 16 bits, so all four
        // positions land in storage word 0 and the merge path carries them
        // as a single word-wide chunk. Membership must still require *all*
        // bits: a probe whose chunk is only partially covered is absent.
        let mut s = Signature::new(64, 4);
        s.insert(line(3));
        assert!(s.maybe_contains(line(3)));
        let absent = (0..2000)
            .map(line)
            .filter(|&l| !s.maybe_contains(l))
            .count();
        assert!(absent > 0, "one insert cannot saturate a 64-bit filter");
        s.clear();
        assert!(!s.maybe_contains(line(3)));
    }

    #[test]
    fn single_hash_wide_filter_spans_many_words() {
        // The opposite extreme: one hash over 4096 bits — chunks never
        // merge and words are touched sparsely.
        let mut s = Signature::new(4096, 1);
        for n in 0..200 {
            s.insert(line(n));
        }
        for n in 0..200 {
            assert!(s.maybe_contains(line(n)));
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use asf_mem::addr::Addr;
    use proptest::prelude::*;

    proptest! {
        /// The defining Bloom property: every inserted element tests
        /// positive (no false negatives), under any configuration.
        #[test]
        fn inserted_lines_always_test_positive(
            lines in prop::collection::vec(0u64..100_000, 1..200),
            cfg in prop::sample::select(vec![(256usize, 4u32), (1024, 4), (512, 2), (64, 1)]),
        ) {
            let mut s = Signature::new(cfg.0, cfg.1);
            for &n in &lines {
                s.insert(Addr(n * 64).line());
            }
            for &n in &lines {
                prop_assert!(s.maybe_contains(Addr(n * 64).line()));
            }
        }
    }
}
