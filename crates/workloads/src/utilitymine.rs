//! **utilitymine** — high-utility itemset mining (RMS-TM).
//!
//! Characteristics reproduced from the paper:
//! * "several very fine-grained data structures" inside transactions:
//!   16-byte itemset entries whose two 8-byte fields (`utility`,
//!   `support`) are read and written by *different* threads — false
//!   sharing **within a 16-byte sub-block**, which is why utilitymine has
//!   the lowest false-conflict reduction at 4 sub-blocks (Figures 8, 9)
//!   while 8-byte sub-blocks fix it;
//! * extremely low contention overall (the paper attributes its −0.1%
//!   Figure 10 outlier to that), achieved here with a large table and long
//!   non-transactional stretches.

use crate::common::{tx, GenProgram, Layout, Region, Scale};
use asf_machine::txprog::{ThreadProgram, TxOp, WorkItem, Workload};

/// The utilitymine kernel.
pub struct UtilityMine {
    scale: Scale,
    /// Itemset entries at a 64-byte stride, one per line:
    /// `{utility: u64 @0, support: u64 @8, pad}`. The two live fields sit
    /// 8 bytes apart in the *same* 16-byte sub-block — so essentially all
    /// of utilitymine's false sharing survives 4 sub-blocks (Figure 8's
    /// outlier) while 8 sub-blocks separate the fields completely.
    itemsets: Region,
}

impl UtilityMine {
    const ITEMSETS: usize = 256; // 256 lines, one record per line

    /// Build for the given scale.
    pub fn new(scale: Scale) -> UtilityMine {
        let mut l = Layout::new();
        let itemsets = l.region(64, Self::ITEMSETS);
        UtilityMine { scale, itemsets }
    }
}

impl Workload for UtilityMine {
    fn name(&self) -> &'static str {
        "utilitymine"
    }

    fn description(&self) -> &'static str {
        "association rule mining"
    }

    fn spawn(&self, tid: usize, _threads: usize, seed: u64) -> Box<dyn ThreadProgram> {
        let sets = self.itemsets;
        let steps = self.scale.txns(340);
        Box::new(GenProgram::new(seed, tid, steps, move |rng, _| {
            // Mine one transaction record: read the `support` field
            // (offset 8) of a handful of itemsets, then add the basket's
            // utility into the `utility` field (offset 0) of one of the
            // *same* itemsets — fields 8 bytes apart inside one 16-byte
            // sub-block, the sub-16-byte false-sharing archetype.
            let mut ops = Vec::with_capacity(7);
            let mut picked = [0usize; 4];
            for p in picked.iter_mut() {
                *p = rng.below_usize(sets.slots);
                ops.push(TxOp::Read {
                    addr: asf_mem::addr::Addr(sets.addr(*p).0 + 8),
                    size: 8,
                });
            }
            ops.push(TxOp::Compute { cycles: 70 });
            let upd = picked[rng.below_usize(picked.len())];
            ops.push(TxOp::Update { addr: sets.addr(upd), size: 8, delta: 5 });
            // Pruning occasionally rewrites the support field itself —
            // a true conflict with concurrent support readers.
            if rng.chance(1, 6) {
                ops.push(TxOp::Update {
                    addr: asf_mem::addr::Addr(sets.addr(upd).0 + 8),
                    size: 8,
                    delta: 1,
                });
            }
            vec![tx(ops), WorkItem::Compute { cycles: 900 }]
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_are_8_bytes_apart_in_one_subblock() {
        let w = UtilityMine::new(Scale::Small);
        for i in 0..4 {
            let rec = w.itemsets.addr(i);
            assert_eq!(rec.offset(), 0, "records at 64-byte stride (one per line)");
            let utility = rec.0;
            let support = rec.0 + 8;
            // Same 16-byte sub-block…
            assert_eq!(utility / 16, support / 16);
            // …different 8-byte blocks.
            assert_ne!(utility / 8, support / 8);
        }
    }

    #[test]
    fn updates_target_previously_read_records() {
        let w = UtilityMine::new(Scale::Small);
        let mut p = w.spawn(0, 8, 21);
        while let Some(item) = p.next_item() {
            if let WorkItem::Tx(att) = item {
                let read_recs: Vec<u64> = att
                    .ops
                    .iter()
                    .filter_map(|o| match o {
                        TxOp::Read { addr, .. } => Some((addr.0 - w.itemsets.base.0) / 64),
                        _ => None,
                    })
                    .collect();
                for op in &att.ops {
                    if let TxOp::Update { addr, .. } = op {
                        let rec = (addr.0 - w.itemsets.base.0) / 64;
                        assert!(read_recs.contains(&rec), "update outside read set");
                        let off = (addr.0 - w.itemsets.base.0) % 64;
                        assert!(off == 0 || off == 8, "utility@0 or support@8, got {off}");
                    }
                }
            }
        }
    }
}
