//! **apriori** — association rule mining (RMS-TM).
//!
//! Characteristics reproduced from the paper:
//! * one of the two highest false-conflict rates (> 90%, Figure 1):
//!   support-counting transactions read wide, scattered sets of candidate
//!   entries, so nearly every counter update invalidates lines other
//!   threads are scanning without touching the same entry;
//! * WAR-dominant false conflicts (Figure 2) — the single writer's
//!   invalidation hits many readers' speculative read sets;
//! * ≈ 100% false-conflict reduction at 4 sub-blocks (Figure 8): candidate
//!   entries are 16-byte records `{support: u64, tid_hint: u64}` aligned to
//!   sub-block boundaries.

use crate::common::{tx, GenProgram, Layout, Region, Scale};
use asf_machine::txprog::{ThreadProgram, TxOp, WorkItem, Workload};

/// The apriori kernel.
pub struct Apriori {
    scale: Scale,
    /// Candidate hash-tree nodes: 32-byte records, 2 per line —
    /// `{key: u64 @0, pad, support: u64 @16, pad}`. Traversals read keys;
    /// counting writes supports. The fields sit in *different* 16-byte
    /// sub-blocks, so key-scan vs. support-bump on the same node is a false
    /// conflict 4 sub-blocks fully remove.
    candidates: Region,
}

impl Apriori {
    const CANDIDATES: usize = 288; // 144 lines

    /// Build for the given scale.
    pub fn new(scale: Scale) -> Apriori {
        let mut l = Layout::new();
        let candidates = l.region(32, Self::CANDIDATES);
        Apriori { scale, candidates }
    }
}

impl Workload for Apriori {
    fn name(&self) -> &'static str {
        "apriori"
    }

    fn description(&self) -> &'static str {
        "association rule mining"
    }

    fn spawn(&self, tid: usize, _threads: usize, seed: u64) -> Box<dyn ThreadProgram> {
        let cand = self.candidates;
        let steps = self.scale.txns(420);
        Box::new(GenProgram::new(seed, tid, steps, move |rng, _| {
            // Count one basket: probe ~14 scattered candidate keys (offset
            // 0 of each node), then increment the support counter (offset
            // 16) of the node that matched.
            let mut ops = Vec::with_capacity(16);
            for _ in 0..10 {
                let c = rng.below_usize(cand.slots);
                ops.push(TxOp::Read { addr: cand.addr(c), size: 8 });
            }
            ops.push(TxOp::Compute { cycles: 60 });
            let hit = rng.below_usize(cand.slots);
            ops.push(TxOp::Update {
                addr: asf_mem::addr::Addr(cand.addr(hit).0 + 16),
                size: 8,
                delta: 1,
            });
            vec![tx(ops), WorkItem::Compute { cycles: 90 }]
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_and_support_fields_are_in_different_subblocks() {
        let w = Apriori::new(Scale::Small);
        assert_eq!(w.candidates.slot, 32);
        for i in 0..8 {
            let node = w.candidates.addr(i);
            assert_eq!(node.offset() % 32, 0, "nodes are 32-byte aligned");
            let key_sb = node.offset() / 16;
            let support_sb = (node.offset() + 16) / 16;
            assert_ne!(key_sb, support_sb);
        }
    }

    #[test]
    fn reads_dominate_writes() {
        let w = Apriori::new(Scale::Small);
        let mut p = w.spawn(0, 8, 11);
        if let Some(WorkItem::Tx(att)) = p.next_item() {
            let reads = att.ops.iter().filter(|o| matches!(o, TxOp::Read { .. })).count();
            let writes = att.ops.iter().filter(|o| matches!(o, TxOp::Update { .. })).count();
            assert_eq!(writes, 1);
            assert!(reads >= 8, "wide read sets drive the WAR dominance");
        } else {
            panic!("expected a transaction");
        }
    }

    #[test]
    fn table_is_hot() {
        // Small enough that concurrent transactions overlap lines often.
        let w = Apriori::new(Scale::Small);
        assert!(w.candidates.lines() <= 160);
    }
}
