//! The benchmarks the paper *excludes* — and why, demonstrably.
//!
//! The paper drops `yada` and `hmm` "because their transactions are
//! extremely large and cannot fit into baseline ASF hardware", and `bayes`
//! for non-deterministic termination. This module implements a yada-style
//! kernel so the exclusion is an empirical result of this reproduction
//! rather than an assumption: its cavity-refinement transactions touch far
//! more cache lines than a 2-way L1 can pin, so ASF capacity-aborts them
//! and nearly every transaction ends up on the software fallback lock
//! (see `asf-repro excluded`).

use crate::common::{tx, GenProgram, Layout, Region, Scale};
use asf_machine::txprog::{ThreadProgram, TxOp, WorkItem, Workload};

/// A yada-style Delaunay mesh-refinement kernel: each transaction
/// privatizes a large "cavity" (many scattered mesh elements) and rewrites
/// much of it.
pub struct Yada {
    scale: Scale,
    /// Mesh elements: 8-byte entries over a large region.
    mesh: Region,
    /// Cavity size in *lines* — scattered, so they collide in L1 sets.
    cavity_lines: usize,
}

impl Yada {
    /// Build the kernel. `cavity_lines` defaults to 160 scattered lines —
    /// with 512 L1 sets × 2 ways, the probability that three cavity lines
    /// collide in one set (an unpinnable footprint) is ≈ 85% per attempt.
    pub fn new(scale: Scale) -> Yada {
        let mut l = Layout::new();
        let mesh = l.region(8, 65_536); // 8192 lines
        Yada { scale, mesh, cavity_lines: 160 }
    }

    /// Expected speculative footprint per transaction, in lines.
    pub fn cavity_lines(&self) -> usize {
        self.cavity_lines
    }
}

impl Workload for Yada {
    fn name(&self) -> &'static str {
        "yada"
    }

    fn description(&self) -> &'static str {
        "Delaunay mesh refinement (excluded: transactions exceed ASF capacity)"
    }

    fn spawn(&self, tid: usize, _threads: usize, seed: u64) -> Box<dyn ThreadProgram> {
        let mesh = self.mesh;
        let cavity = self.cavity_lines;
        let steps = self.scale.txns(24);
        Box::new(GenProgram::new(seed, tid, steps, move |rng, _| {
            // Refine one bad triangle: read a large scattered cavity, then
            // retriangulate (write) a third of it.
            let mut ops = Vec::with_capacity(cavity + cavity / 3 + 2);
            let mut picked = Vec::with_capacity(cavity);
            for _ in 0..cavity {
                let line = rng.below_usize(mesh.slots / 8);
                picked.push(line);
                ops.push(mesh.read(line * 8 + rng.below_usize(8)));
            }
            for &line in picked.iter().step_by(3) {
                ops.push(mesh.update(line * 8 + rng.below_usize(8), 1));
            }
            ops.push(TxOp::Compute { cycles: 400 });
            vec![tx(ops), WorkItem::Compute { cycles: 600 }]
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asf_core::detector::DetectorKind;
    use asf_machine::machine::{Machine, SimConfig};

    #[test]
    fn cavities_are_large_and_scattered() {
        let w = Yada::new(Scale::Small);
        let mut p = w.spawn(0, 8, 1);
        if let Some(WorkItem::Tx(att)) = p.next_item() {
            let reads = att.ops.iter().filter(|o| matches!(o, TxOp::Read { .. })).count();
            assert!(reads >= 150, "cavity too small: {reads}");
        } else {
            panic!("expected a transaction");
        }
    }

    #[test]
    fn yada_capacity_aborts_dominate() {
        // The empirical justification for the paper's exclusion: most
        // transactions cannot be pinned in the L1 and fall back to the
        // lock after capacity aborts.
        let w = Yada::new(Scale::Small);
        let mut cfg = SimConfig::paper_seeded(DetectorKind::Baseline, 7);
        cfg.max_retries = 2; // give up quickly; capacity aborts repeat
        let out = Machine::run(&w, cfg);
        let capacity = out.stats.aborts_by_cause[2];
        assert!(
            capacity > out.stats.tx_committed / 2,
            "expected pervasive capacity aborts, got {capacity} for {} commits",
            out.stats.tx_committed
        );
        assert!(
            out.stats.fallback_commits * 3 >= out.stats.tx_committed,
            "expected heavy fallback usage: {} of {}",
            out.stats.fallback_commits,
            out.stats.tx_committed
        );
        assert_eq!(out.stats.isolation_violations, 0);
    }
}

/// An hmm-style kernel (profile-HMM training): each transaction streams a
/// model slice *larger than the whole L1*, so even perfectly sequential
/// (conflict-free in sets) footprints cannot be pinned — the other failure
/// mode behind the paper's exclusion.
pub struct Hmm {
    scale: Scale,
    /// Model parameters: 8-byte entries, streamed in large sequential runs.
    model: Region,
    /// Lines touched per transaction — beyond the L1's 1024-line capacity.
    slice_lines: usize,
}

impl Hmm {
    /// Build the kernel: 1100-line slices against a 1024-line L1.
    pub fn new(scale: Scale) -> Hmm {
        let mut l = Layout::new();
        let model = l.region(8, 16_384); // 2048 lines
        Hmm { scale, model, slice_lines: 1_100 }
    }

    /// Lines touched per transaction.
    pub fn slice_lines(&self) -> usize {
        self.slice_lines
    }
}

impl Workload for Hmm {
    fn name(&self) -> &'static str {
        "hmm"
    }

    fn description(&self) -> &'static str {
        "profile-HMM training (excluded: transactions exceed L1 capacity outright)"
    }

    fn spawn(&self, tid: usize, _threads: usize, seed: u64) -> Box<dyn ThreadProgram> {
        let model = self.model;
        let slice = self.slice_lines;
        let steps = self.scale.txns(8);
        Box::new(GenProgram::new(seed, tid, steps, move |rng, _| {
            // One training step: stream a huge sequential model slice
            // (reads) and update a few accumulators along the way.
            let total_lines = model.slots / 8;
            let start = rng.below_usize(total_lines - slice);
            let mut ops = Vec::with_capacity(slice / 4 + 8);
            // One 8-byte read per 4th line keeps op counts manageable while
            // still pinning `slice` distinct lines... every 4th line read
            // still touches slice/4 lines; read one slot in EVERY line to
            // exceed capacity:
            for l in 0..slice {
                ops.push(model.read((start + l) * 8));
            }
            for l in (0..slice).step_by(128) {
                ops.push(model.update((start + l) * 8 + 4, 1));
            }
            ops.push(TxOp::Compute { cycles: 500 });
            vec![tx(ops), WorkItem::Compute { cycles: 800 }]
        }))
    }
}

#[cfg(test)]
mod hmm_tests {
    use super::*;
    use asf_core::detector::DetectorKind;
    use asf_machine::machine::{Machine, SimConfig};

    #[test]
    fn hmm_exceeds_l1_capacity_outright() {
        let w = Hmm::new(Scale::Small);
        assert!(w.slice_lines() > 1024, "slice must exceed the 1024-line L1");
        let mut cfg = SimConfig::paper_seeded(DetectorKind::Baseline, 5);
        cfg.max_retries = 1;
        let out = Machine::run(&w, cfg);
        // Every transaction needs the fallback: sequential footprints larger
        // than the cache cannot be pinned regardless of associativity.
        assert_eq!(
            out.stats.fallback_commits, out.stats.tx_committed,
            "every hmm transaction must fall back"
        );
        // Capacity aborts trigger the spiral; once one core holds the lock,
        // the remaining giant transactions are mostly cut short by lock
        // acquisitions — the whole run degenerates to serial execution.
        assert!(out.stats.aborts_by_cause[2] >= 1, "capacity aborts start the spiral");
        assert!(out.stats.tx_aborted >= out.stats.tx_committed);
    }
}

/// A bayes-style kernel (Bayesian network structure learning): the search
/// loop runs *until its score converges*, and the convergence point depends
/// on which dependency-edge insertions win their races — so the amount of
/// work is timing-dependent. The paper excludes bayes for exactly this
/// "non-deterministic finishing condition"; here each seed converges after
/// a different number of transactions, making per-run comparisons
/// meaningless (see the `excluded_bayes` test).
pub struct Bayes {
    /// Adjacency/score table of the learned network: 8-byte entries.
    edges: Region,
    /// Convergence ceiling (safety bound; real runs stop much earlier).
    max_steps: usize,
}

/// Thread program for [`Bayes`]: keeps proposing edge insertions until the
/// locally observed score stops improving.
struct BayesLearner {
    rng: asf_mem::rng::SimRng,
    edges: Region,
    remaining: usize,
    /// Consecutive proposals that didn't improve the (modelled) score.
    stale: u32,
}

impl Bayes {
    /// Build the kernel.
    pub fn new(scale: Scale) -> Bayes {
        let mut l = Layout::new();
        let edges = l.region(8, 512);
        Bayes { edges, max_steps: scale.txns(600) * 8 }
    }
}

impl Workload for Bayes {
    fn name(&self) -> &'static str {
        "bayes"
    }

    fn description(&self) -> &'static str {
        "Bayesian network learning (excluded: non-deterministic finishing condition)"
    }

    fn spawn(&self, tid: usize, _threads: usize, seed: u64) -> Box<dyn ThreadProgram> {
        Box::new(BayesLearner {
            rng: asf_mem::rng::SimRng::derive(seed, 0x6a7e5 + tid as u64),
            edges: self.edges,
            remaining: self.max_steps,
            stale: 0,
        })
    }
}

impl ThreadProgram for BayesLearner {
    fn next_item(&mut self) -> Option<WorkItem> {
        // Convergence: after a run of non-improving proposals, stop. The
        // improvement draw stands in for the score delta, whose sign in the
        // real program depends on which racing insertions committed first —
        // the source of the benchmark's non-determinism.
        if self.remaining == 0 || self.stale >= 6 {
            return None;
        }
        self.remaining -= 1;
        if self.rng.chance(1, 4) {
            self.stale = 0;
        } else {
            self.stale += 1;
        }
        let e = self.edges.pick(&mut self.rng);
        let n = (e + 7) % self.edges.slots;
        Some(tx(vec![
            self.edges.read(n),
            self.edges.update(e, 1),
            TxOp::Compute { cycles: 120 },
        ]))
    }
}

#[cfg(test)]
mod bayes_tests {
    use super::*;
    use asf_core::detector::DetectorKind;
    use asf_machine::machine::{Machine, SimConfig};

    #[test]
    fn bayes_termination_is_seed_dependent() {
        // The committed-transaction count varies wildly across seeds — the
        // "non-deterministic finishing condition" that makes bayes useless
        // for the paper's comparisons.
        let w = Bayes::new(Scale::Small);
        let counts: Vec<u64> = (0..6)
            .map(|s| {
                Machine::run(&w, SimConfig::paper_seeded(DetectorKind::Baseline, 100 + s))
                    .stats
                    .tx_committed
            })
            .collect();
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(
            max as f64 >= 1.2 * min as f64,
            "expected ≥20% spread in committed txns, got {counts:?}"
        );
    }
}
