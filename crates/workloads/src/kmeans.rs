//! **kmeans** — K-means clustering (STAMP).
//!
//! Characteristics reproduced from the paper:
//! * 32-bit (4-byte) data granularity (Figure 5 shows kmeans accesses at a
//!   4-byte stride while the other benchmarks use 8 bytes);
//! * false conflicts concentrated on a *few hot cache lines* (Figure 4):
//!   the centroid accumulators and the packed per-centroid count array span
//!   only a handful of lines;
//! * RAW-dominant false conflicts (Figure 2): accumulate writes happen
//!   early in the transaction (long speculative-write windows), so other
//!   threads' centroid-row reads probe lines carrying in-flight 4-byte
//!   writes;
//! * residual false sharing *within 8-byte sub-blocks* (Figure 8: kmeans is
//!   the one benchmark 8 sub-blocks cannot fully fix): the packed 4-byte
//!   member-count array puts two logically unrelated counters in every
//!   8-byte block;
//! * false-conflict count grows linearly over time (Figure 3).

use crate::common::{tx, GenProgram, Layout, Region, Scale};
use asf_machine::txprog::{ThreadProgram, TxOp, WorkItem, Workload};

/// The kmeans kernel.
pub struct Kmeans {
    scale: Scale,
    /// Centroid accumulator cells: K rows of D packed 4-byte accumulators
    /// (32-byte rows, two centroids per line).
    cells: Region,
    /// Per-centroid member counts: K packed 4-byte counters (one hot line).
    counts: Region,
    k: usize,
    dims: usize,
}

impl Kmeans {
    const K: usize = 64;
    const DIMS: usize = 8; // 32-byte rows, 2 per line

    /// Build for the given scale.
    pub fn new(scale: Scale) -> Kmeans {
        let mut l = Layout::new();
        let cells = l.region(4, Self::K * Self::DIMS); // 2 KiB = 32 lines
        let counts = l.region(4, Self::K); // 256 B = 4 hot lines
        Kmeans { scale, cells, counts, k: Self::K, dims: Self::DIMS }
    }
}

impl Workload for Kmeans {
    fn name(&self) -> &'static str {
        "kmeans"
    }

    fn description(&self) -> &'static str {
        "K-means clustering"
    }

    fn word_size(&self) -> usize {
        4
    }

    fn spawn(&self, tid: usize, _threads: usize, seed: u64) -> Box<dyn ThreadProgram> {
        let cells = self.cells;
        let counts = self.counts;
        let k = self.k;
        let dims = self.dims;
        let steps = self.scale.txns(400);
        Box::new(GenProgram::new(seed, tid, steps, move |rng, i| {
            // Accumulate one point into its centroid. Cluster assignment
            // is thread-affine (each thread's data partition mostly maps
            // to "its" centroids, 31 in 32 picks), which keeps concurrent
            // same-line *write* pairs — the irreducible WAW-any aborts —
            // rare, as the paper's ≈0% WAW share requires. The early
            // writes live for the whole transaction, so the roaming
            // half-row read and the packed 4-byte count reads of other
            // threads probe them: RAW-dominant false conflicts resolved in
            // stages (cross-row at 2 sub-blocks, cross-half-row at 4,
            // cross-count-pair at 8, and only byte/4-byte granularity
            // separates adjacent counts — the kmeans residue of Figure 8).
            let home = tid % (k / 8).max(1);
            let upd = if rng.chance(31, 32) {
                home * 8 + rng.below_usize(8)
            } else {
                rng.below_usize(k)
            };
            let d0 = rng.below_usize(dims);
            let d1 = (d0 + 3) % dims;
            let read_k = rng.below_usize(k);
            let half = rng.below_usize(2);
            let mut ops = vec![
                cells.update(upd * dims + d0, 1),
                cells.update(upd * dims + d1, 1),
                // Compute between the accumulates and the roaming reads:
                // long write windows, short read windows => RAW-dominant.
                TxOp::Compute { cycles: 25 },
                // Roaming half-row read (4 cells, 16 B) of a random
                // centroid: distance evaluation against other clusters.
                TxOp::Read {
                    addr: cells.addr(read_k * dims + 4 * half),
                    size: 16,
                },
                counts.read(rng.below_usize(k)),
                counts.read(rng.below_usize(k)),
            ];
            if i % 8 == 0 {
                ops.push(counts.update(upd, 1));
            }
            vec![tx(ops), WorkItem::Compute { cycles: 420 }]
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_structures_span_few_lines() {
        let w = Kmeans::new(Scale::Small);
        assert_eq!(w.cells.lines(), 32, "centroid cells stay concentrated");
        assert_eq!(w.counts.lines(), 4, "count array spans a few hot lines");
    }

    #[test]
    fn four_byte_granularity() {
        let w = Kmeans::new(Scale::Small);
        assert_eq!(w.cells.slot, 4);
        assert_eq!(w.counts.slot, 4);
        assert_eq!(w.word_size(), 4);
    }

    #[test]
    fn adjacent_counts_share_an_8_byte_block() {
        // The structural reason 8 sub-blocks cannot fully fix kmeans.
        let w = Kmeans::new(Scale::Small);
        let a = w.counts.addr(0);
        let b = w.counts.addr(1);
        assert_eq!(a.line(), b.line());
        assert_eq!(a.offset() / 8, b.offset() / 8, "cells 0,1 share an 8-byte block");
    }

    #[test]
    fn two_centroid_rows_share_each_line() {
        let w = Kmeans::new(Scale::Small);
        let row0 = w.cells.addr(0);
        let row1 = w.cells.addr(w.dims);
        let row2 = w.cells.addr(2 * w.dims);
        assert_eq!(row0.line(), row1.line());
        assert_ne!(row1.line(), row2.line());
    }

    #[test]
    fn transactions_are_tiny_rmw_bundles() {
        // STAMP kmeans transactions are a handful of 4-byte accumulates.
        let w = Kmeans::new(Scale::Small);
        let mut p = w.spawn(1, 8, 3);
        while let Some(item) = p.next_item() {
            if let WorkItem::Tx(att) = item {
                assert!(att.ops.len() <= 7, "kmeans txns must stay tiny");
                for op in &att.ops {
                    match op {
                        TxOp::Update { size, .. } => {
                            assert_eq!(*size, 4, "kmeans writes at 4-byte granularity");
                        }
                        TxOp::Read { size, .. } => {
                            assert!(*size == 4 || *size == 16, "count or half-row reads");
                        }
                        _ => {}
                    }
                }
            }
        }
    }
}
