//! **ssca2** — graph computing kernels (STAMP).
//!
//! Characteristics reproduced from the paper:
//! * very many *tiny* transactions touching adjacent 8-byte array slots;
//! * the highest false-conflict rate of the suite (> 90%, Figure 1):
//!   per-thread graph partitions mean a line's eight slots belong to one
//!   writer, while readers roam all partitions — nearly every conflict is
//!   cross-slot false sharing;
//! * writes are partition-private, so cross-thread write/write (WAW)
//!   collisions are essentially absent (Figure 2).

use crate::common::{tx, GenProgram, Layout, Region, Scale};
use asf_machine::txprog::{ThreadProgram, TxOp, WorkItem, Workload};

/// The ssca2 kernel.
pub struct Ssca2 {
    scale: Scale,
    /// Adjacency/weight array: 8-byte slots, 8 per line, partitioned by
    /// thread (thread t owns slots `[t*part, (t+1)*part)`).
    arr: Region,
    part: usize,
    threads_hint: usize,
}

impl Ssca2 {
    /// Partition size (slots per thread): 8 lines of 8 slots.
    const PART: usize = 64;

    /// Build for the given scale (laid out for up to 8 threads).
    pub fn new(scale: Scale) -> Ssca2 {
        let threads_hint = 8;
        let mut l = Layout::new();
        let arr = l.region(8, Self::PART * threads_hint);
        Ssca2 { scale, arr, part: Self::PART, threads_hint }
    }
}

impl Workload for Ssca2 {
    fn name(&self) -> &'static str {
        "ssca2"
    }

    fn description(&self) -> &'static str {
        "graph kernels"
    }

    fn spawn(&self, tid: usize, threads: usize, seed: u64) -> Box<dyn ThreadProgram> {
        let arr = self.arr;
        let part = self.part;
        let total = part * threads.min(self.threads_hint);
        let own_base = (tid % self.threads_hint) * part;
        let steps = self.scale.txns(480);
        Box::new(GenProgram::new(seed, tid, steps, move |rng, _| {
            // A tiny graph-update transaction: bump one weight in the own
            // partition, read the two endpoint slots of a random cross edge.
            let w = own_base + rng.below_usize(part);
            let e = rng.below_usize(total);
            let e2 = (e + 1) % total;
            vec![
                tx(vec![
                    arr.update(w, 1),
                    arr.read(e),
                    arr.read(e2),
                    TxOp::Compute { cycles: 20 },
                ]),
                WorkItem::Compute { cycles: 60 },
            ]
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_do_not_overlap() {
        let w = Ssca2::new(Scale::Small);
        // Thread 0 and thread 1 own disjoint slot ranges, hence lines.
        let base0 = 0;
        let base1 = w.part;
        let last0 = w.arr.addr(base0 + w.part - 1);
        let first1 = w.arr.addr(base1);
        assert!(last0.line() < first1.line() || last0.line() == first1.line());
        // Partition is a whole number of lines (64 slots × 8 B = 8 lines).
        assert_eq!((w.part * 8) % 64, 0);
    }

    #[test]
    fn programs_are_deterministic() {
        let w = Ssca2::new(Scale::Small);
        let collect = |seed| {
            let mut p = w.spawn(2, 8, seed);
            let mut v = Vec::new();
            while let Some(it) = p.next_item() {
                v.push(format!("{it:?}"));
            }
            v
        };
        assert_eq!(collect(7), collect(7));
        assert_ne!(collect(7), collect(8));
    }

    #[test]
    fn transactions_are_tiny() {
        let w = Ssca2::new(Scale::Small);
        let mut p = w.spawn(0, 8, 1);
        while let Some(item) = p.next_item() {
            if let WorkItem::Tx(att) = item {
                assert!(att.ops.len() <= 5, "ssca2 txns must stay tiny");
            }
        }
    }
}
