//! **vacation** — client/server travel reservation system (STAMP).
//!
//! Characteristics reproduced from the paper:
//! * medium transactions traversing tree-structured tables: ~10 record
//!   reads followed by one or two field updates;
//! * 32-byte records (two per 64-byte line) at 8-byte field granularity —
//!   cross-record false sharing is fully separated by 16-byte sub-blocks,
//!   which is why vacation reaches ≈ 100% false-conflict reduction at
//!   4 sub-blocks (Figure 8);
//! * WAR-dominant false conflicts (Figure 2): reservation updates
//!   invalidate lines other clients are traversing;
//! * a skewed popularity distribution keeps contention (and retries) high
//!   enough that eliminating false conflicts buys a large execution-time
//!   win (Figure 10).

use crate::common::{tx, GenProgram, Layout, Region, Scale};
use asf_machine::txprog::{ThreadProgram, TxOp, WorkItem, Workload};

/// The vacation kernel.
pub struct Vacation {
    scale: Scale,
    /// Reservation records: 32 bytes each (car/room/flight entries with
    /// id, total, used, price fields of 8 bytes).
    records: Region,
    hot_records: usize,
}

impl Vacation {
    const RECORDS: usize = 384; // 192 lines

    /// Build for the given scale.
    pub fn new(scale: Scale) -> Vacation {
        let mut l = Layout::new();
        let records = l.region(32, Self::RECORDS);
        Vacation { scale, records, hot_records: Self::RECORDS / 24 }
    }

    fn pick_record(&self) -> impl Fn(&mut asf_mem::rng::SimRng) -> usize {
        let n = self.records.slots;
        let hot = self.hot_records;
        move |rng| {
            if rng.chance(3, 5) {
                rng.below_usize(hot) // 60% of traffic on ~4% of records
            } else {
                rng.below_usize(n)
            }
        }
    }
}

impl Workload for Vacation {
    fn name(&self) -> &'static str {
        "vacation"
    }

    fn description(&self) -> &'static str {
        "client/server travel reservation system"
    }

    fn spawn(&self, tid: usize, _threads: usize, seed: u64) -> Box<dyn ThreadProgram> {
        let records = self.records;
        let pick = self.pick_record();
        let steps = self.scale.txns(360);
        Box::new(GenProgram::new(seed, tid, steps, move |rng, _| {
            // STAMP vacation issues three request types: ~90% reservations,
            // ~5% customer deletions, ~5% manager table updates.
            let kind = rng.below(20);
            let mut ops = Vec::with_capacity(14);
            if kind < 18 {
                // Reservation: traverse the table reading record *headers*
                // (id/total fields, first 16 bytes) uniformly, then book a
                // popular record — full availability read, compute, then
                // bump `used`@16 and sometimes `price`@24. Headers and
                // booked fields live in different 16-byte sub-blocks, so a
                // traversal crossing a just-booked record is a false
                // conflict the sub-blocking technique removes; two bookings
                // of one record remain a true conflict.
                let path_len = 5 + rng.below_usize(3);
                for _ in 0..path_len {
                    let r = rng.below_usize(records.slots);
                    ops.push(TxOp::Read { addr: records.addr(r), size: 16 });
                }
                let book = pick(rng);
                let base = records.addr(book);
                ops.push(TxOp::Read { addr: base, size: 32 });
                ops.push(TxOp::Compute { cycles: 150 });
                ops.push(TxOp::Update { addr: asf_mem::addr::Addr(base.0 + 16), size: 8, delta: 1 });
                if rng.chance(1, 3) {
                    ops.push(TxOp::Update { addr: asf_mem::addr::Addr(base.0 + 24), size: 8, delta: 3 });
                }
            } else if kind == 18 {
                // Delete customer: read the customer's bookings and release
                // two reservations (negative `used` updates on popular
                // records — the same field the bookings fight over).
                for _ in 0..2 {
                    let r = pick(rng);
                    let base = records.addr(r);
                    ops.push(TxOp::Read { addr: base, size: 32 });
                    ops.push(TxOp::Update {
                        addr: asf_mem::addr::Addr(base.0 + 16),
                        size: 8,
                        delta: 1u64.wrapping_neg(),
                    });
                }
                ops.push(TxOp::Compute { cycles: 100 });
            } else {
                // Manager update: rewrite a record's header field (`total`
                // @8 — inside the header sub-block traversals read), a true
                // conflict with any concurrent traversal of that record and
                // a false one with traversals of its line partner.
                let r = rng.below_usize(records.slots);
                let base = records.addr(r);
                ops.push(TxOp::Read { addr: base, size: 16 });
                ops.push(TxOp::Compute { cycles: 80 });
                ops.push(TxOp::Update { addr: asf_mem::addr::Addr(base.0 + 8), size: 8, delta: 2 });
            }
            vec![tx(ops), WorkItem::Compute { cycles: 120 }]
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_32_bytes_two_per_line() {
        let w = Vacation::new(Scale::Small);
        assert_eq!(w.records.slot, 32);
        let a = w.records.addr(0);
        let b = w.records.addr(1);
        let c = w.records.addr(2);
        assert_eq!(a.line(), b.line());
        assert_ne!(b.line(), c.line());
    }

    #[test]
    fn records_align_to_16_byte_subblocks() {
        // The structural reason 4 sub-blocks fully separate records.
        let w = Vacation::new(Scale::Small);
        for i in 0..8 {
            assert_eq!(w.records.addr(i).offset() % 16, 0);
        }
    }

    #[test]
    fn request_mix_has_three_shapes() {
        let w = Vacation::new(Scale::Small);
        let mut p = w.spawn(0, 8, 5);
        let (mut reservations, mut deletes, mut manages) = (0u32, 0u32, 0u32);
        while let Some(item) = p.next_item() {
            if let WorkItem::Tx(att) = item {
                let reads =
                    att.ops.iter().filter(|o| matches!(o, TxOp::Read { .. })).count();
                let updates =
                    att.ops.iter().filter(|o| matches!(o, TxOp::Update { .. })).count();
                match (reads, updates) {
                    (r, u) if r >= 6 && (1..=2).contains(&u) => reservations += 1,
                    (2, 2) => deletes += 1,
                    (1, 1) => manages += 1,
                    other => panic!("unexpected txn shape {other:?}"),
                }
            }
        }
        assert!(reservations > 0, "reservations dominate");
        // Across many txns all three request types appear (use more steps
        // by spawning several threads' worth).
        for tid in 1..8 {
            let mut p = w.spawn(tid, 8, 5);
            while let Some(item) = p.next_item() {
                if let WorkItem::Tx(att) = item {
                    let reads =
                        att.ops.iter().filter(|o| matches!(o, TxOp::Read { .. })).count();
                    let updates =
                        att.ops.iter().filter(|o| matches!(o, TxOp::Update { .. })).count();
                    match (reads, updates) {
                        (r, u) if r >= 6 && (1..=2).contains(&u) => reservations += 1,
                        (2, 2) => deletes += 1,
                        (1, 1) => manages += 1,
                        other => panic!("unexpected txn shape {other:?}"),
                    }
                }
            }
        }
        assert!(deletes > 0, "delete-customer requests appear");
        assert!(manages > 0, "manager updates appear");
        // ~90% of requests are reservations (18 of 20 draws).
        assert!(
            reservations > 5 * (deletes + manages),
            "reservations must dominate the mix: {reservations} vs {deletes}+{manages}"
        );
    }

    #[test]
    fn hot_set_is_skewed() {
        let w = Vacation::new(Scale::Small);
        let pick = w.pick_record();
        let mut rng = asf_mem::rng::SimRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| pick(&mut rng) < w.hot_records).count();
        // ~50% + 1/8 of the other 50% ≈ 56%.
        assert!(hits > 4_500, "hot records get at least half the traffic, got {hits}");
    }
}
