//! **intruder** — network intrusion detection (STAMP).
//!
//! Characteristics reproduced from the paper:
//! * the *lowest* false-conflict rate of the suite (Figure 1): the hot
//!   structure is a single work-queue head counter alone in its line, so
//!   almost all conflicts are true;
//! * very high average retry counts — short transactions hammering the
//!   queue produce abort cascades, which is why the few false conflicts it
//!   does have (packed dictionary slots) cost disproportionate time and
//!   removing them yields a large execution-time win (Figure 10);
//! * short transactions with little non-transactional work between them.

use crate::common::{tx, GenProgram, Layout, Region, Scale};
use asf_machine::txprog::{ThreadProgram, TxOp, WorkItem, Workload};

/// The intruder kernel.
pub struct Intruder {
    scale: Scale,
    /// The work-queue head counter: one 8-byte slot, alone in its line
    /// (true contention, no false sharing).
    queue_head: Region,
    /// Per-thread packet staging areas (private lines). (STAMP's shared
    /// flow-reassembly map is modelled as private staging: a shared map
    /// with realistic insert latencies drives the queue-head retry
    /// cascades into fallback storms that bury every paper-relevant
    /// signal — see docs/CALIBRATION.md.)
    fragments: Vec<Region>,
    /// Attack-signature dictionary: packed 8-byte slots, 8 per line — the
    /// benchmark's only source of false sharing.
    dictionary: Region,
}

impl Intruder {
    const DICT: usize = 64; // 8 lines
    const THREADS: usize = 8;

    /// Build for the given scale.
    pub fn new(scale: Scale) -> Intruder {
        let mut l = Layout::new();
        let queue_head = l.region(8, 1);
        let fragments = l.per_thread(Self::THREADS, 8, 64);
        let dictionary = l.region(8, Self::DICT);
        Intruder { scale, queue_head, fragments, dictionary }
    }
}

impl Workload for Intruder {
    fn name(&self) -> &'static str {
        "intruder"
    }

    fn description(&self) -> &'static str {
        "network intrusion detection"
    }

    fn spawn(&self, tid: usize, _threads: usize, seed: u64) -> Box<dyn ThreadProgram> {
        let queue = self.queue_head;
        let frag = self.fragments[tid % self.fragments.len()];
        let dict = self.dictionary;
        let steps = self.scale.txns(520);
        Box::new(GenProgram::new(seed, tid, steps, move |rng, i| {
            // One in four transactions pops the shared queue (true
            // contention on the line-isolated head counter — intruder's
            // dominant, irreducible conflict source); the rest process a
            // packet: private reassembly plus packed-dictionary traffic,
            // the benchmark's only false-sharing source.
            let ops = if i % 4 == 0 {
                // Pop + classify in one short transaction: a false
                // dictionary conflict here forces a retry that re-contends
                // on the head counter, so baseline false conflicts amplify
                // retry cascades — the effect behind intruder's outsized
                // Figure 10 gain despite its tiny false-conflict share.
                let mut v = vec![
                    queue.update(0, 1),
                    dict.read(rng.below_usize(dict.slots)),
                    TxOp::Compute { cycles: 10 },
                ];
                if rng.chance(1, 3) {
                    v.push(dict.update(rng.below_usize(dict.slots), 1));
                }
                v
            } else {
                vec![
                    frag.read(rng.below_usize(frag.slots)),
                    dict.read(rng.below_usize(dict.slots)),
                    TxOp::Compute { cycles: 30 },
                ]
            };
            vec![tx(ops), WorkItem::Compute { cycles: 110 }]
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_head_is_line_isolated() {
        let w = Intruder::new(Scale::Small);
        assert_eq!(w.queue_head.slots, 1);
        // Nothing else shares the head's line: next structure is ≥1 MiB away.
        assert!(w.fragments[0].base.0 - w.queue_head.base.0 >= 1 << 20);
    }

    #[test]
    fn dictionary_is_packed() {
        let w = Intruder::new(Scale::Small);
        assert_eq!(w.dictionary.addr(0).line(), w.dictionary.addr(7).line());
    }

    #[test]
    fn fragment_areas_are_thread_private() {
        let w = Intruder::new(Scale::Small);
        for i in 0..w.fragments.len() {
            for j in i + 1..w.fragments.len() {
                let a = &w.fragments[i];
                let b = &w.fragments[j];
                assert!(
                    a.base.0 + a.bytes() <= b.base.0 || b.base.0 + b.bytes() <= a.base.0
                );
            }
        }
    }

    #[test]
    fn a_quarter_of_txns_pop_the_queue_head() {
        let w = Intruder::new(Scale::Small);
        let head = w.queue_head.addr(0);
        let mut p = w.spawn(3, 8, 9);
        let (mut pops, mut total) = (0u32, 0u32);
        while let Some(item) = p.next_item() {
            if let WorkItem::Tx(att) = item {
                total += 1;
                if att.ops.iter().any(
                    |o| matches!(o, TxOp::Update { addr, .. } if *addr == head),
                ) {
                    pops += 1;
                }
            }
        }
        assert!(total > 0);
        let quarter = total / 4;
        assert!(
            (quarter.saturating_sub(1)..=quarter + 1).contains(&pops),
            "one-in-four pop mix: {pops} of {total}"
        );
    }
}
