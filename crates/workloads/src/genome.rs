//! **genome** — gene sequencing (STAMP).
//!
//! Characteristics reproduced from the paper:
//! * phase behaviour: segment deduplication over a large hash table, then a
//!   contracted matching phase on a much smaller table, then sequence
//!   linking — Figure 3 shows genome's false conflicts growing in *bursts*
//!   during particular periods while started transactions grow linearly;
//! * RAW-dominant false conflicts (Figure 2): insert transactions read
//!   bucket neighbourhoods whose lines carry other threads' in-flight
//!   8-byte bucket writes;
//! * 8-byte table entries (Figure 5).

use crate::common::{tx, GenProgram, Layout, Region, Scale};
use asf_machine::txprog::{ThreadProgram, TxOp, WorkItem, Workload};

/// The genome kernel.
pub struct Genome {
    scale: Scale,
    /// Phase-1 segment hash table (large: collisions rare).
    table: Region,
    /// Phase-2 overlap-matching table (small: the burst source).
    match_table: Region,
    /// Phase-3 sequence links.
    links: Region,
    /// Global segment counter (alone in its line): pure true contention.
    counter: Region,
}

impl Genome {
    /// Build for the given scale.
    pub fn new(scale: Scale) -> Genome {
        let mut l = Layout::new();
        let table = l.region(8, 4096); // 512 lines
        let match_table = l.region(8, 512); // 64 lines — hot
        let links = l.region(8, 2048); // 256 lines
        let counter = l.region(8, 1);
        Genome { scale, table, match_table, links, counter }
    }
}

impl Workload for Genome {
    fn name(&self) -> &'static str {
        "genome"
    }

    fn description(&self) -> &'static str {
        "gene sequencing"
    }

    fn spawn(&self, tid: usize, threads: usize, seed: u64) -> Box<dyn ThreadProgram> {
        let table = self.table;
        let match_table = self.match_table;
        let links = self.links;
        let counter = self.counter;
        let steps = self.scale.txns(400);
        let threads = threads.max(1);
        Box::new(GenProgram::new(seed, tid, steps, move |rng, i| {
            // `i` counts down from `steps` to 1: phase 1 is the first 60%,
            // phase 2 the next 20% (the burst), phase 3 the rest.
            let frac_done = 1.0 - (i as f64 / steps as f64);
            // Segments are partitioned per thread (as STAMP genome does in
            // phase 1), so inserts land on thread-owned *lines*; duplicate
            // checks read anywhere. One writer per line keeps irreducible
            // cross-thread WAW at zero, while reads crossing a writer's
            // line are the RAW-dominant false conflicts (writes come first
            // in the transaction — long speculative-write windows). A read
            // landing on the written slot itself is a true conflict.
            let own_slot = |rng: &mut asf_mem::rng::SimRng, slots: usize| {
                let lines = slots / 8;
                let own_lines = (lines / threads).max(1);
                let line = (tid % threads) * own_lines + rng.below_usize(own_lines);
                (line * 8 + rng.below_usize(8)) % slots
            };
            if frac_done < 0.6 {
                // Phase 1: hash-table dedup insert. Large table => low rate.
                let h = own_slot(rng, table.slots);
                let mut ops = vec![table.update(h, 1), TxOp::Compute { cycles: 80 }];
                for _ in 0..5 {
                    ops.push(table.read(rng.below_usize(table.slots)));
                }
                // Allocating the segment id bumps a global counter — the
                // benchmark's true-contention hotspot.
                if rng.chance(1, 8) {
                    ops.push(counter.update(0, 1));
                }
                vec![tx(ops), WorkItem::Compute { cycles: 300 }]
            } else if frac_done < 0.8 {
                // Phase 2: overlap matching on the small hot table -- the
                // false-conflict burst of Figure 3.
                let h = own_slot(rng, match_table.slots);
                let mut ops = vec![match_table.update(h, 1), TxOp::Compute { cycles: 60 }];
                for _ in 0..5 {
                    ops.push(match_table.read(rng.below_usize(match_table.slots)));
                }
                if rng.chance(1, 8) {
                    ops.push(counter.update(0, 1));
                }
                vec![tx(ops), WorkItem::Compute { cycles: 120 }]
            } else {
                // Phase 3: link segments into the sequence.
                let s = own_slot(rng, links.slots);
                let mut ops = vec![
                    links.update(s, 1),
                    TxOp::Compute { cycles: 70 },
                    links.read(rng.below_usize(links.slots)),
                    links.read(rng.below_usize(links.slots)),
                ];
                if rng.chance(1, 8) {
                    ops.push(counter.update(0, 1));
                }
                vec![tx(ops), WorkItem::Compute { cycles: 260 }]
            }
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_table_is_much_hotter_than_main_table() {
        let w = Genome::new(Scale::Small);
        assert!(w.table.lines() >= 8 * w.match_table.lines());
    }

    #[test]
    fn phases_cover_all_steps() {
        let w = Genome::new(Scale::Standard);
        let mut p = w.spawn(0, 8, 1);
        let mut txns = 0;
        while let Some(item) = p.next_item() {
            if matches!(item, WorkItem::Tx(_)) {
                txns += 1;
            }
        }
        assert_eq!(txns, 400);
    }

    #[test]
    fn deterministic() {
        let w = Genome::new(Scale::Small);
        let run = |seed| {
            let mut p = w.spawn(1, 8, seed);
            let mut n = 0u64;
            while let Some(it) = p.next_item() {
                n = n.wrapping_mul(31).wrapping_add(format!("{it:?}").len() as u64);
            }
            n
        };
        assert_eq!(run(5), run(5));
    }
}
