//! Shared building blocks for the benchmark kernels.

use asf_machine::txprog::{ThreadProgram, TxOp, WorkItem};
use asf_mem::addr::Addr;
use asf_mem::rng::SimRng;

/// Input-size preset. `Standard` matches the harness's figure runs; `Small`
/// keeps unit tests fast; `Large` is for soak/bench runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Fast preset for tests (~40 transactions per thread).
    Small,
    /// The configuration used to regenerate the paper's figures.
    Standard,
    /// Heavier runs for benchmarking the simulator itself.
    Large,
    /// The shard-parallel tier (64–512 simulated cores): soak-sized inputs
    /// for the `asf-repro scale` sweep and the streaming generators.
    Huge,
}

impl Scale {
    /// Scale a standard transaction count to this preset.
    pub fn txns(self, standard: usize) -> usize {
        match self {
            Scale::Small => (standard / 8).max(8),
            Scale::Standard => standard,
            Scale::Large => standard * 4,
            Scale::Huge => standard * 16,
        }
    }
}

/// A contiguous region of simulated memory carved into fixed-size slots.
///
/// All benchmark data structures are laid out with `Region`s; the slot size
/// encodes the benchmark's natural data granularity (4-byte kmeans cells,
/// 8-byte table entries, 32-byte tree records, …).
#[derive(Clone, Copy, Debug)]
pub struct Region {
    /// First byte of the region.
    pub base: Addr,
    /// Slot size in bytes.
    pub slot: u32,
    /// Number of slots.
    pub slots: usize,
}

impl Region {
    /// Define a region.
    pub const fn new(base: u64, slot: u32, slots: usize) -> Region {
        Region { base: Addr(base), slot, slots }
    }

    /// Address of slot `i`.
    #[inline]
    pub fn addr(&self, i: usize) -> Addr {
        debug_assert!(i < self.slots, "slot {i} out of {}", self.slots);
        Addr(self.base.0 + (i as u64) * self.slot as u64)
    }

    /// Total bytes covered.
    pub fn bytes(&self) -> u64 {
        self.slot as u64 * self.slots as u64
    }

    /// Number of 64-byte lines covered (region bases are line-aligned in
    /// all kernels).
    pub fn lines(&self) -> u64 {
        self.bytes().div_ceil(64)
    }

    /// A uniformly random slot index.
    #[inline]
    pub fn pick(&self, rng: &mut SimRng) -> usize {
        rng.below_usize(self.slots)
    }

    /// A read of slot `i` (whole slot).
    pub fn read(&self, i: usize) -> TxOp {
        TxOp::Read { addr: self.addr(i), size: self.slot }
    }

    /// An in-place update (+delta) of slot `i`; slot must be ≤ 8 bytes.
    pub fn update(&self, i: usize, delta: u64) -> TxOp {
        debug_assert!(self.slot <= 8);
        TxOp::Update { addr: self.addr(i), size: self.slot, delta }
    }

    /// A write of `value` to slot `i`; slot must be ≤ 8 bytes.
    pub fn write(&self, i: usize, value: u64) -> TxOp {
        debug_assert!(self.slot <= 8);
        TxOp::Write { addr: self.addr(i), size: self.slot, value }
    }
}

/// Base address allocator: each structure gets its own line-aligned chunk,
/// 1 MiB apart so distinct structures never share lines.
pub struct Layout {
    next: u64,
}

impl Layout {
    /// Start allocating at 16 MiB (clear of the null page by a wide margin).
    pub fn new() -> Layout {
        Layout { next: 16 << 20 }
    }

    /// Allocate a region of `slots` slots of `slot` bytes.
    pub fn region(&mut self, slot: u32, slots: usize) -> Region {
        let base = self.next;
        let bytes = (slot as u64 * slots as u64).max(64);
        self.next += bytes.div_ceil(1 << 20).max(1) * (1 << 20);
        Region::new(base, slot, slots)
    }

    /// One region per thread (each its own chunk — fully private lines).
    pub fn per_thread(&mut self, threads: usize, slot: u32, slots: usize) -> Vec<Region> {
        (0..threads).map(|_| self.region(slot, slots)).collect()
    }
}

impl Default for Layout {
    fn default() -> Self {
        Layout::new()
    }
}

/// A thread program driven by a generator closure: each call produces the
/// work items of one logical step until the step budget runs out.
pub struct GenProgram<F> {
    rng: SimRng,
    remaining: usize,
    queue: std::collections::VecDeque<WorkItem>,
    gen: F,
}

impl<F> GenProgram<F>
where
    F: FnMut(&mut SimRng, usize) -> Vec<WorkItem>,
{
    /// `gen(rng, index)` returns the work items of logical step `index`
    /// (counted down from `steps` to 1; typically one transaction plus
    /// optional surrounding compute).
    pub fn new(seed: u64, tid: usize, steps: usize, gen: F) -> GenProgram<F> {
        GenProgram {
            rng: SimRng::derive(seed, 0x1000 + tid as u64),
            remaining: steps,
            queue: std::collections::VecDeque::new(),
            gen,
        }
    }
}

impl<F> ThreadProgram for GenProgram<F>
where
    F: FnMut(&mut SimRng, usize) -> Vec<WorkItem> + Send,
{
    fn next_item(&mut self) -> Option<WorkItem> {
        loop {
            if let Some(item) = self.queue.pop_front() {
                return Some(item);
            }
            if self.remaining == 0 {
                return None;
            }
            let idx = self.remaining;
            self.remaining -= 1;
            self.queue.extend((self.gen)(&mut self.rng, idx));
        }
    }
}

/// Convenience: one transaction work item.
pub fn tx(ops: Vec<TxOp>) -> WorkItem {
    WorkItem::Tx(asf_machine::txprog::TxAttempt::new(ops))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_addressing() {
        let r = Region::new(0x1000, 8, 16);
        assert_eq!(r.addr(0), Addr(0x1000));
        assert_eq!(r.addr(3), Addr(0x1018));
        assert_eq!(r.bytes(), 128);
        assert_eq!(r.lines(), 2);
    }

    #[test]
    fn layout_separates_structures() {
        let mut l = Layout::new();
        let a = l.region(8, 100);
        let b = l.region(8, 100);
        assert!(b.base.0 >= a.base.0 + a.bytes());
        assert_eq!(a.base.0 % 64, 0);
        assert_eq!(b.base.0 % 64, 0);
    }

    #[test]
    fn per_thread_regions_disjoint() {
        let mut l = Layout::new();
        let regions = l.per_thread(4, 8, 64);
        for (i, a) in regions.iter().enumerate() {
            for b in regions.iter().skip(i + 1) {
                assert!(
                    b.base.0 >= a.base.0 + a.bytes() || a.base.0 >= b.base.0 + b.bytes(),
                    "thread regions overlap"
                );
            }
        }
    }

    #[test]
    fn scale_presets() {
        assert_eq!(Scale::Standard.txns(400), 400);
        assert_eq!(Scale::Small.txns(400), 50);
        assert_eq!(Scale::Large.txns(400), 1600);
        assert_eq!(Scale::Huge.txns(400), 6400);
        assert_eq!(Scale::Small.txns(10), 8); // floor
    }

    #[test]
    fn gen_program_counts_down() {
        let mut p = GenProgram::new(1, 0, 3, |_rng, idx| {
            vec![WorkItem::Compute { cycles: idx as u64 }]
        });
        let mut got = Vec::new();
        while let Some(WorkItem::Compute { cycles }) = p.next_item() {
            got.push(cycles);
        }
        assert_eq!(got, vec![3, 2, 1]);
    }

    #[test]
    fn gen_program_skips_empty_steps() {
        let mut p = GenProgram::new(1, 0, 4, |_rng, idx| {
            if idx % 2 == 0 {
                vec![]
            } else {
                vec![WorkItem::Compute { cycles: idx as u64 }]
            }
        });
        let mut got = Vec::new();
        while let Some(WorkItem::Compute { cycles }) = p.next_item() {
            got.push(cycles);
        }
        assert_eq!(got, vec![3, 1]);
    }

    #[test]
    fn region_pick_is_in_range() {
        let r = Region::new(0, 8, 7);
        let mut rng = SimRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(r.pick(&mut rng) < 7);
        }
    }
}
