//! **labyrinth** — maze routing (STAMP).
//!
//! Characteristics reproduced from the paper:
//! * very large read sets: each routing transaction privatizes a swath of
//!   the grid (contiguous multi-line reads — sequential sets, so the
//!   footprint fits ASF's L1 pinning);
//! * most aborts are *user aborts* (path invalidation re-routes), and the
//!   absolute number of coherence conflicts is tiny — "sometimes even lower
//!   than 20" — which is why the paper flags labyrinth's Figure 9 numbers
//!   as high-variance;
//! * long in-transaction compute (path search) and long non-transactional
//!   stretches, so execution-time improvements are small (Figure 10).

use crate::common::{tx, GenProgram, Layout, Region, Scale};
use asf_machine::txprog::{ThreadProgram, TxOp, WorkItem, Workload};

/// The labyrinth kernel.
pub struct Labyrinth {
    scale: Scale,
    /// The shared routing grid: 8-byte cells.
    grid: Region,
    /// The work queue of pending routes: head counter alone in its line.
    queue: Region,
}

impl Labyrinth {
    const CELLS: usize = 8192; // 1024 lines

    /// Build for the given scale.
    pub fn new(scale: Scale) -> Labyrinth {
        let mut l = Layout::new();
        let grid = l.region(8, Self::CELLS);
        let queue = l.region(8, 1);
        Labyrinth { scale, grid, queue }
    }
}

impl Workload for Labyrinth {
    fn name(&self) -> &'static str {
        "labyrinth"
    }

    fn description(&self) -> &'static str {
        "maze routing"
    }

    fn spawn(&self, tid: usize, _threads: usize, seed: u64) -> Box<dyn ThreadProgram> {
        let grid = self.grid;
        let queue = self.queue;
        let steps = self.scale.txns(48);
        Box::new(GenProgram::new(seed, tid, steps, move |rng, _| {
            // Route one wire: privatize a grid swath by reading cells 0 and
            // 4 of 10–16 consecutive lines (a sparse routing frontier), so
            // a remote path claim on any *other* cell of a read line is a
            // false conflict — half resolvable at 4 sub-blocks (cells 3, 7)
            // and half only at 8 (cells 1, 5, adjacent to the read cells).
            // Claims happen early (long speculative-write windows ⇒
            // RAW-dominant), then the path search runs (long compute), and
            // path invalidation re-routes ≈ 1 in 8 attempts (user abort).
            let lines = 10 + rng.below_usize(7);
            let start_line = rng.below_usize(grid.slots / 8 - lines);
            let mut ops = Vec::with_capacity(2 * lines + 6);
            for l in 0..lines {
                ops.push(grid.read((start_line + l) * 8));
                ops.push(grid.read((start_line + l) * 8 + 4));
            }
            for _ in 0..3 {
                // Claim a non-frontier cell inside the swath (1, 3, 5, 7).
                let cell = (start_line + rng.below_usize(lines)) * 8
                    + 2 * rng.below_usize(4)
                    + 1;
                ops.push(grid.update(cell, 1));
            }
            ops.push(TxOp::Compute { cycles: 1_500 });
            ops.push(TxOp::UserAbort { num: 1, den: 8 });
            let mut items = Vec::with_capacity(3);
            if rng.chance(1, 2) {
                // Grab the next route request from the work queue — a
                // minimal transaction with pure true contention.
                items.push(tx(vec![queue.update(0, 1)]));
            }
            items.push(tx(ops));
            items.push(WorkItem::Compute { cycles: 2_500 });
            items
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swath_reads_even_cells_writes_odd_cells() {
        let w = Labyrinth::new(Scale::Small);
        let mut p = w.spawn(0, 8, 2);
        let mut saw_tx = false;
        while let Some(item) = p.next_item() {
            if let WorkItem::Tx(att) = item {
                if att.ops.len() <= 2 {
                    continue; // the queue-pop transaction
                }
                saw_tx = true;
                let mut reads = 0;
                let mut lo = u64::MAX;
                let mut hi = 0u64;
                for op in &att.ops {
                    match op {
                        TxOp::Read { addr, size } => {
                            reads += 1;
                            assert_eq!(*size, 8);
                            let cell = (addr.0 - w.grid.base.0) / 8;
                            assert!(cell.is_multiple_of(8) || cell % 8 == 4, "frontier cells 0/4");
                            lo = lo.min(addr.0);
                            hi = hi.max(addr.0);
                        }
                        TxOp::Update { addr, .. } => {
                            let cell = (addr.0 - w.grid.base.0) / 8;
                            assert_eq!(cell % 2, 1, "writes claim odd cells only");
                            assert!(addr.0 >= lo && addr.0 <= hi + 64, "path inside swath");
                        }
                        _ => {}
                    }
                }
                assert!((10 * 2..=16 * 2).contains(&reads), "{reads} frontier reads");
            }
        }
        assert!(saw_tx);
    }

    #[test]
    fn has_user_aborts() {
        let w = Labyrinth::new(Scale::Small);
        let mut p = w.spawn(1, 8, 4);
        let mut saw = false;
        while let Some(item) = p.next_item() {
            if let WorkItem::Tx(att) = item {
                saw |= att
                    .ops
                    .iter()
                    .any(|o| matches!(o, TxOp::UserAbort { .. }));
            }
        }
        assert!(saw);
    }
}
