//! Streaming workload generators for the huge (shard-parallel) tier.
//!
//! The Table III kernels are sized for the paper's 8-core machine; driving
//! 64–512 simulated cores needs workloads that (a) scale transaction counts
//! into the millions, (b) cost **constant memory per core** — transactions
//! are generated on demand from a seeded RNG stream, never materialized as
//! a list — and (c) partition their data so the shard engine's memory model
//! holds: plain data never crosses clusters, speculative conflicts may.
//!
//! ## Address plan
//!
//! Fixed bases, far above the Table III kernels' 16 MiB arena and far apart
//! (the simulator's memory is sparse, so the spread is free):
//!
//! * **private** — 1 TiB + `tid`·1 MiB: one pool per core, never shared;
//! * **cluster** — 2 TiB + `cluster`·1 MiB: shared by the 16 cores of one
//!   cluster — *intra-shard* conflicts, detected at cycle granularity;
//! * **global** — 3 TiB: one pool shared by every core — the only data
//!   that crosses clusters, and it is only ever touched *transactionally*,
//!   so cross-cluster traffic is exactly the speculative traffic the epoch
//!   barrier routes.
//!
//! Every program is a pure function of `(seed, global tid)`: the `threads`
//! count does not enter generation at all, so core 17's stream is identical
//! whether it runs on one 64-core machine or as core 1 of shard 1 — the
//! shard-equivalence tests lean on this.

use crate::common::{tx, GenProgram, Region};
use asf_machine::txprog::{ThreadProgram, TxOp, WorkItem, Workload};

/// Base of the per-core private pools.
const PRIVATE_BASE: u64 = 1 << 40;
/// Base of the per-cluster shared pools.
const CLUSTER_BASE: u64 = 2 << 40;
/// Base of the single global pool.
const GLOBAL_BASE: u64 = 3 << 40;
/// 1 MiB spacing between pools (lines never straddle pools).
const POOL_STRIDE: u64 = 1 << 20;

/// Shape of a streaming workload: counts, mix percentages, compute gaps.
#[derive(Clone, Copy, Debug)]
pub struct StreamSpec {
    /// Transactions generated per core (millions across a huge machine).
    pub txns_per_core: usize,
    /// Reads per transaction (from the private pool, or per
    /// `global_read_pct` the global pool).
    pub reads_per_tx: usize,
    /// Updates per transaction (private, or per the pcts below).
    pub updates_per_tx: usize,
    /// Percent of updates aimed at the cluster-shared pool (intra-shard
    /// contention).
    pub cluster_update_pct: u32,
    /// Percent of updates aimed at the global pool (the cross-shard
    /// conflict source).
    pub global_update_pct: u32,
    /// Percent of reads taken from the global pool.
    pub global_read_pct: u32,
    /// Percent of steps that are pure non-transactional compute (an
    /// "idle-heavy" mix stresses the watchdog, not the fabric).
    pub idle_pct: u32,
    /// Compute cycles inside each transaction.
    pub tx_compute: u64,
    /// Compute cycles between transactions.
    pub gap_compute: u64,
    /// Cores per cluster (must match the shard engine's topology for the
    /// cluster pools to be cluster-private).
    pub cores_per_cluster: usize,
    /// 8-byte slots in each pool.
    pub slots_per_pool: usize,
}

impl StreamSpec {
    /// Balanced mix: mostly private traffic, a tenth of updates on the
    /// cluster pool, a few percent crossing clusters through the global
    /// pool. The default for throughput curves.
    pub fn mix() -> StreamSpec {
        StreamSpec {
            txns_per_core: 256,
            reads_per_tx: 3,
            updates_per_tx: 2,
            cluster_update_pct: 10,
            global_update_pct: 2,
            global_read_pct: 5,
            idle_pct: 10,
            tx_compute: 20,
            gap_compute: 80,
            cores_per_cluster: 16,
            slots_per_pool: 512,
        }
    }

    /// Idle-heavy mix: most steps are plain compute and transactions are
    /// short and private — long commit gaps and abort droughts that a
    /// naively-tuned watchdog misreads as livelock at 256 cores (the
    /// regression test in `tests/shard_equivalence.rs` pins this).
    pub fn idle_heavy() -> StreamSpec {
        StreamSpec {
            idle_pct: 70,
            reads_per_tx: 1,
            updates_per_tx: 1,
            cluster_update_pct: 5,
            global_update_pct: 0,
            global_read_pct: 0,
            gap_compute: 400,
            ..StreamSpec::mix()
        }
    }

    /// The million-transaction soak: ≥ 2^20 transactions at 256 cores.
    pub fn million() -> StreamSpec {
        StreamSpec { txns_per_core: 4096, ..StreamSpec::mix() }
    }

    /// CI-sized smoke preset.
    pub fn smoke() -> StreamSpec {
        StreamSpec { txns_per_core: 24, ..StreamSpec::mix() }
    }

    /// Total transactions this spec generates on `cores` cores.
    pub fn total_txns(&self, cores: usize) -> usize {
        self.txns_per_core * cores
    }

    /// The private pool of global core `tid`.
    pub fn private_pool(&self, tid: usize) -> Region {
        Region::new(PRIVATE_BASE + tid as u64 * POOL_STRIDE, 8, self.slots_per_pool)
    }

    /// The shared pool of `tid`'s cluster.
    pub fn cluster_pool(&self, tid: usize) -> Region {
        let cluster = (tid / self.cores_per_cluster) as u64;
        Region::new(CLUSTER_BASE + cluster * POOL_STRIDE, 8, self.slots_per_pool)
    }

    /// The single global pool.
    pub fn global_pool(&self) -> Region {
        Region::new(GLOBAL_BASE, 8, self.slots_per_pool)
    }
}

/// A named streaming workload. Unlike the Table III kernels this is not
/// registered in [`crate::all`] — it exists for the `asf-repro scale`
/// experiment and the shard-equivalence tests.
pub struct StreamWorkload {
    name: &'static str,
    spec: StreamSpec,
}

impl StreamWorkload {
    /// Wrap a spec under a stable name (used in run keys and JSON).
    pub fn new(name: &'static str, spec: StreamSpec) -> StreamWorkload {
        assert!(spec.cores_per_cluster >= 1);
        assert!(spec.slots_per_pool >= 1);
        StreamWorkload { name, spec }
    }

    /// The spec this workload generates from.
    pub fn spec(&self) -> StreamSpec {
        self.spec
    }
}

/// Look up a streaming preset by name (`mix`, `idle_heavy`, `million`,
/// `smoke`).
pub fn by_name(name: &str) -> Option<StreamWorkload> {
    match name {
        "mix" => Some(StreamWorkload::new("mix", StreamSpec::mix())),
        "idle_heavy" => Some(StreamWorkload::new("idle_heavy", StreamSpec::idle_heavy())),
        "million" => Some(StreamWorkload::new("million", StreamSpec::million())),
        "smoke" => Some(StreamWorkload::new("smoke", StreamSpec::smoke())),
        _ => None,
    }
}

/// The streaming preset names, in presentation order.
pub fn names() -> [&'static str; 4] {
    ["mix", "idle_heavy", "million", "smoke"]
}

impl Workload for StreamWorkload {
    fn name(&self) -> &'static str {
        self.name
    }

    fn description(&self) -> &'static str {
        "streaming generator for the shard-parallel huge tier"
    }

    fn spawn(&self, tid: usize, threads: usize, seed: u64) -> Box<dyn ThreadProgram> {
        // `threads` deliberately unused: generation is a function of the
        // global tid alone, so sharding cannot change workload content.
        let _ = threads;
        let spec = self.spec;
        let private = spec.private_pool(tid);
        let cluster = spec.cluster_pool(tid);
        let global = spec.global_pool();
        Box::new(GenProgram::new(seed, tid, spec.txns_per_core, move |rng, _| {
            if spec.idle_pct > 0 && rng.chance(spec.idle_pct as u64, 100) {
                return vec![WorkItem::Compute { cycles: spec.gap_compute.max(1) * 4 }];
            }
            let mut ops = Vec::with_capacity(spec.reads_per_tx + spec.updates_per_tx + 1);
            for _ in 0..spec.reads_per_tx {
                let pool = if spec.global_read_pct > 0
                    && rng.chance(spec.global_read_pct as u64, 100)
                {
                    &global
                } else {
                    &private
                };
                let i = pool.pick(rng);
                ops.push(pool.read(i));
            }
            for _ in 0..spec.updates_per_tx {
                let roll = rng.below(100) as u32;
                let pool = if roll < spec.global_update_pct {
                    &global
                } else if roll < spec.global_update_pct + spec.cluster_update_pct {
                    &cluster
                } else {
                    &private
                };
                let i = pool.pick(rng);
                ops.push(pool.update(i, 1));
            }
            if spec.tx_compute > 0 {
                ops.push(TxOp::Compute { cycles: spec.tx_compute });
            }
            vec![tx(ops), WorkItem::Compute { cycles: spec.gap_compute.max(1) }]
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &StreamWorkload, tid: usize, threads: usize, seed: u64) -> Vec<String> {
        let mut p = w.spawn(tid, threads, seed);
        let mut v = Vec::new();
        while let Some(it) = p.next_item() {
            v.push(format!("{it:?}"));
        }
        v
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let w = StreamWorkload::new("mix", StreamSpec::smoke());
        assert_eq!(drain(&w, 3, 64, 7), drain(&w, 3, 64, 7));
        assert_ne!(drain(&w, 3, 64, 7), drain(&w, 3, 64, 8));
        assert_ne!(drain(&w, 3, 64, 7), drain(&w, 4, 64, 7));
    }

    #[test]
    fn thread_count_never_enters_generation() {
        // The shard-equivalence keystone: core 17's program is the same
        // whether spawned as 17-of-64 (monolithic) or 17-of-256 (sharded).
        let w = StreamWorkload::new("mix", StreamSpec::mix());
        assert_eq!(drain(&w, 17, 64, 5), drain(&w, 17, 256, 5));
    }

    #[test]
    fn pools_partition_as_documented() {
        let spec = StreamSpec::mix();
        // Private pools: disjoint per core, below the cluster base.
        let a = spec.private_pool(0);
        let b = spec.private_pool(1);
        assert!(a.base.0 + a.bytes() <= b.base.0);
        assert!(b.base.0 + b.bytes() <= CLUSTER_BASE);
        // Cluster pools: one per 16 cores, disjoint across clusters.
        assert_eq!(spec.cluster_pool(0).base, spec.cluster_pool(15).base);
        assert_ne!(spec.cluster_pool(15).base, spec.cluster_pool(16).base);
        let c0 = spec.cluster_pool(0);
        let c1 = spec.cluster_pool(16);
        assert!(c0.base.0 + c0.bytes() <= c1.base.0);
        assert!(c1.base.0 + c1.bytes() <= GLOBAL_BASE);
    }

    #[test]
    fn million_preset_crosses_a_million_at_256_cores() {
        assert!(StreamSpec::million().total_txns(256) >= 1 << 20);
    }

    #[test]
    fn presets_resolve_by_name() {
        for n in names() {
            let w = by_name(n).expect("preset exists");
            assert_eq!(w.name(), n);
        }
        assert!(by_name("nonesuch").is_none());
    }

    #[test]
    fn idle_heavy_generates_mostly_compute() {
        let w = StreamWorkload::new("idle_heavy", StreamSpec::idle_heavy());
        let items = drain(&w, 0, 16, 1);
        let txns = items.iter().filter(|s| s.starts_with("Tx")).count();
        let computes = items.len() - txns;
        assert!(
            computes > txns,
            "idle-heavy must be compute-dominated: {txns} txns vs {computes} computes"
        );
    }
}
