//! **scalparc** — decision-tree classification (RMS-TM).
//!
//! Characteristics reproduced from the paper:
//! * attribute-list records of 16 bytes (four per 64-byte line): split
//!   transactions scan record ranges and update one record's class counter;
//! * a high false-conflict rate at line granularity, with ≈ 100% reduction
//!   at 4 sub-blocks (Figure 8) — records coincide exactly with 16-byte
//!   sub-blocks, so every cross-record conflict disappears;
//! * 8-byte field accesses within the records.

use crate::common::{tx, GenProgram, Layout, Region, Scale};
use asf_machine::txprog::{ThreadProgram, TxOp, WorkItem, Workload};

/// The scalparc kernel.
pub struct ScalParc {
    scale: Scale,
    /// Attribute list: 16-byte records `{value: u64, class_count: u64}`.
    attrs: Region,
}

impl ScalParc {
    const RECORDS: usize = 512; // 128 lines

    /// Build for the given scale.
    pub fn new(scale: Scale) -> ScalParc {
        let mut l = Layout::new();
        let attrs = l.region(16, Self::RECORDS);
        ScalParc { scale, attrs }
    }
}

impl Workload for ScalParc {
    fn name(&self) -> &'static str {
        "scalparc"
    }

    fn description(&self) -> &'static str {
        "decision tree classification"
    }

    fn spawn(&self, tid: usize, _threads: usize, seed: u64) -> Box<dyn ThreadProgram> {
        let attrs = self.attrs;
        let steps = self.scale.txns(380);
        Box::new(GenProgram::new(seed, tid, steps, move |rng, _| {
            // Evaluate one candidate split: read a run of whole 16-byte
            // records, then bump the `class_count` field (offset 8, 8 B)
            // of one record elsewhere in the list. Cross-record conflicts
            // are false and vanish at 16-byte sub-blocks; a scan covering
            // the updated record itself is a true conflict.
            let run = 5 + rng.below_usize(4);
            let start = rng.below_usize(attrs.slots - run);
            let mut ops = Vec::with_capacity(run + 2);
            for r in 0..run {
                ops.push(TxOp::Read { addr: attrs.addr(start + r), size: 16 });
            }
            ops.push(TxOp::Compute { cycles: 90 });
            let upd = rng.below_usize(attrs.slots);
            ops.push(TxOp::Update {
                addr: asf_mem::addr::Addr(attrs.addr(upd).0 + 8),
                size: 8,
                delta: 1,
            });
            vec![tx(ops), WorkItem::Compute { cycles: 420 }]
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_coincide_with_16_byte_subblocks() {
        let w = ScalParc::new(Scale::Small);
        assert_eq!(w.attrs.slot, 16);
        for i in 0..16 {
            assert_eq!(w.attrs.addr(i).offset() % 16, 0);
        }
    }

    #[test]
    fn update_field_stays_inside_its_record() {
        let w = ScalParc::new(Scale::Small);
        let mut p = w.spawn(2, 8, 6);
        while let Some(item) = p.next_item() {
            if let WorkItem::Tx(att) = item {
                for op in &att.ops {
                    if let TxOp::Update { addr, size, .. } = op {
                        let rec_off = (addr.0 - w.attrs.base.0) % 16;
                        assert_eq!(rec_off, 8, "class_count field at offset 8");
                        assert_eq!(*size, 8);
                    }
                }
            }
        }
    }

    #[test]
    fn scans_are_contiguous_runs() {
        let w = ScalParc::new(Scale::Small);
        let mut p = w.spawn(0, 8, 1);
        if let Some(WorkItem::Tx(att)) = p.next_item() {
            let reads: Vec<u64> = att
                .ops
                .iter()
                .filter_map(|o| match o {
                    TxOp::Read { addr, .. } => Some(addr.0),
                    _ => None,
                })
                .collect();
            for pair in reads.windows(2) {
                assert_eq!(pair[1] - pair[0], 16, "records read in a run");
            }
        } else {
            panic!("expected a transaction first");
        }
    }
}
