//! **fluidanimate** — fluid simulation (PARSEC kernel, RMS-TM port).
//!
//! Characteristics reproduced from the paper:
//! * 32-byte grid cells (two per line) updated by their owning thread after
//!   reading neighbouring cells — a stencil pattern;
//! * a moderate false-conflict rate: neighbour reads share lines with
//!   other threads' cell updates (cross-cell ⇒ false, resolved by 2+
//!   sub-blocks), while reads of the updated cell itself are true
//!   conflicts;
//! * sizeable non-transactional stretches (density/force computation), so
//!   the execution-time gain is modest (Figure 10).

use crate::common::{tx, GenProgram, Layout, Region, Scale};
use asf_machine::txprog::{ThreadProgram, TxOp, WorkItem, Workload};

/// The fluidanimate kernel.
pub struct Fluidanimate {
    scale: Scale,
    /// Particle grid cells: 32-byte records, round-robin owned by thread.
    cells: Region,
}

impl Fluidanimate {
    const CELLS: usize = 256; // 128 lines

    /// Build for the given scale.
    pub fn new(scale: Scale) -> Fluidanimate {
        let mut l = Layout::new();
        let cells = l.region(32, Self::CELLS);
        Fluidanimate { scale, cells }
    }
}

impl Workload for Fluidanimate {
    fn name(&self) -> &'static str {
        "fluidanimate"
    }

    fn description(&self) -> &'static str {
        "fluid simulation"
    }

    fn spawn(&self, tid: usize, threads: usize, seed: u64) -> Box<dyn ThreadProgram> {
        let cells = self.cells;
        let steps = self.scale.txns(300);
        Box::new(GenProgram::new(seed, tid, steps, move |rng, _| {
            // Update one owned cell after reading its stencil neighbours.
            // Ownership is round-robin: cell i belongs to thread i % T, so
            // the two cells of a line usually belong to different threads.
            let owned = {
                let mut c = rng.below_usize(cells.slots);
                c -= c % threads.max(1);
                (c + tid) % cells.slots
            };
            let left = (owned + cells.slots - 1) % cells.slots;
            let right = (owned + 1) % cells.slots;
            vec![
                tx(vec![
                    // Left neighbour: full cell (position + velocity) —
                    // overlaps its owner's updates, a true conflict.
                    TxOp::Read { addr: cells.addr(left), size: 32 },
                    // Right neighbour: full cell as well. False conflicts
                    // come from the *other* cell of each read line (the
                    // line partner we never touch), resolved by 2+
                    // sub-blocks.
                    TxOp::Read { addr: cells.addr(right), size: 32 },
                    TxOp::Compute { cycles: 110 },
                    // Velocity fields live in the second 16-byte half.
                    TxOp::Update {
                        addr: asf_mem::addr::Addr(cells.addr(owned).0 + 16),
                        size: 8,
                        delta: 1,
                    },
                    TxOp::Update {
                        addr: asf_mem::addr::Addr(cells.addr(owned).0 + 24),
                        size: 8,
                        delta: 2,
                    },
                ]),
                WorkItem::Compute { cycles: 520 },
            ]
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_are_32_bytes() {
        let w = Fluidanimate::new(Scale::Small);
        assert_eq!(w.cells.slot, 32);
        assert_eq!(w.cells.addr(0).line(), w.cells.addr(1).line());
        assert_ne!(w.cells.addr(1).line(), w.cells.addr(2).line());
    }

    #[test]
    fn threads_update_only_their_cells() {
        let w = Fluidanimate::new(Scale::Small);
        let threads = 8;
        for tid in [0usize, 3, 7] {
            let mut p = w.spawn(tid, threads, 5);
            while let Some(item) = p.next_item() {
                if let WorkItem::Tx(att) = item {
                    for op in &att.ops {
                        if let TxOp::Update { addr, .. } = op {
                            let cell = ((addr.0 - w.cells.base.0) / 32) as usize;
                            assert_eq!(cell % threads, tid, "foreign cell updated");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn stencil_reads_are_neighbours() {
        let w = Fluidanimate::new(Scale::Small);
        let mut p = w.spawn(1, 8, 2);
        if let Some(WorkItem::Tx(att)) = p.next_item() {
            let reads: Vec<u64> = att
                .ops
                .iter()
                .filter_map(|o| match o {
                    TxOp::Read { addr, .. } => Some((addr.0 - w.cells.base.0) / 32),
                    _ => None,
                })
                .collect();
            let upd = att
                .ops
                .iter()
                .find_map(|o| match o {
                    TxOp::Update { addr, .. } => Some((addr.0 - w.cells.base.0) / 32),
                    _ => None,
                })
                .unwrap();
            let n = w.cells.slots as u64;
            assert!(reads.contains(&((upd + n - 1) % n)));
            assert!(reads.contains(&((upd + 1) % n)));
        } else {
            panic!("expected a transaction");
        }
    }
}
