//! # asf-workloads — STAMP / RMS-TM-style transactional kernels
//!
//! The paper evaluates ten benchmarks (Table III) ported to ASF. The
//! originals are C programs; what drives every result in the paper is their
//! *memory behaviour inside transactions* — sharing pattern, data-structure
//! granularity, transaction length, contention level. Each module here
//! re-implements one benchmark as a synthetic kernel that reproduces those
//! documented characteristics against the simulator's workload API (see
//! DESIGN.md §2 for the substitution argument):
//!
//! | kernel | models | key traits encoded |
//! |---|---|---|
//! | [`intruder`] | network intrusion detection | short queue+dictionary txns, high *true* contention, lowest false rate, high retries |
//! | [`kmeans`] | K-means clustering | 4-byte centroid/count cells, few hot lines, RAW-dominant, residual false sharing at 8-byte sub-blocks |
//! | [`labyrinth`] | maze routing | large privatized read sets, user-level aborts, very few coherence conflicts |
//! | [`ssca2`] | graph kernels | tiny txns on adjacent 8-byte slots, > 90% false rate |
//! | [`vacation`] | travel reservation | 32-byte tree records, WAR-dominant, ≈ 100% reduction at 4 sub-blocks |
//! | [`genome`] | gene sequencing | two phases with false-conflict bursts, RAW-heavy |
//! | [`scalparc`] | decision-tree classification | 16-byte attribute records, ≈ 100% reduction at 4 sub-blocks |
//! | [`apriori`] | association rule mining | wide reads + single counter update, > 90% false, WAR-dominant |
//! | [`fluidanimate`] | fluid simulation | 32-byte grid cells, neighbour reads, moderate false rate |
//! | [`utilitymine`] | association rule mining | packed 8-byte-stride counters, low reduction at 4 sub-blocks, resolved at 8 |
//!
//! All kernels are deterministic functions of `(seed, tid)`.
//!
//! [`excluded`] additionally implements a yada-style kernel to demonstrate
//! *why* the paper excludes it (transactions exceed ASF's L1 capacity); it
//! is not part of [`all`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apriori;
pub mod common;
pub mod excluded;
pub mod fluidanimate;
pub mod genome;
pub mod intruder;
pub mod kmeans;
pub mod labyrinth;
pub mod scalparc;
pub mod ssca2;
pub mod streaming;
pub mod utilitymine;
pub mod vacation;

use asf_machine::txprog::Workload;
pub use common::Scale;

/// All ten benchmarks in the paper's presentation order (Table III).
pub fn all(scale: Scale) -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(intruder::Intruder::new(scale)),
        Box::new(kmeans::Kmeans::new(scale)),
        Box::new(labyrinth::Labyrinth::new(scale)),
        Box::new(ssca2::Ssca2::new(scale)),
        Box::new(vacation::Vacation::new(scale)),
        Box::new(genome::Genome::new(scale)),
        Box::new(scalparc::ScalParc::new(scale)),
        Box::new(apriori::Apriori::new(scale)),
        Box::new(fluidanimate::Fluidanimate::new(scale)),
        Box::new(utilitymine::UtilityMine::new(scale)),
    ]
}

/// The Table III benchmark names in presentation order, without building
/// the workloads. Callers that only need labels (grid headers, run keys,
/// perf tables) use this instead of constructing ten kernels via [`all`]
/// and immediately discarding them. Names are scale-invariant; the `scale`
/// parameter exists so the signature stays in lock-step with [`all`] (a
/// future scale-dependent roster would change both together).
pub fn names(scale: Scale) -> [&'static str; 10] {
    let _ = scale;
    [
        "intruder",
        "kmeans",
        "labyrinth",
        "ssca2",
        "vacation",
        "genome",
        "scalparc",
        "apriori",
        "fluidanimate",
        "utilitymine",
    ]
}

/// Look a benchmark up by its Table III name.
pub fn by_name(name: &str, scale: Scale) -> Option<Box<dyn Workload>> {
    all(scale).into_iter().find(|w| w.name() == name)
}

/// The four benchmarks the paper uses for Figures 3–5.
pub fn representative_four(scale: Scale) -> Vec<Box<dyn Workload>> {
    ["vacation", "genome", "kmeans", "intruder"]
        .iter()
        .map(|n| by_name(n, scale).expect("known benchmark"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_ten_benchmarks() {
        let names: Vec<_> = all(Scale::Small).iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            vec![
                "intruder",
                "kmeans",
                "labyrinth",
                "ssca2",
                "vacation",
                "genome",
                "scalparc",
                "apriori",
                "fluidanimate",
                "utilitymine",
            ]
        );
    }

    #[test]
    fn names_agree_with_all_at_every_scale() {
        for scale in [Scale::Small, Scale::Standard, Scale::Large, Scale::Huge] {
            let built: Vec<_> = all(scale).iter().map(|w| w.name()).collect();
            assert_eq!(names(scale).to_vec(), built, "{scale:?}");
        }
    }

    #[test]
    fn by_name_roundtrip() {
        for w in all(Scale::Small) {
            assert!(by_name(w.name(), Scale::Small).is_some());
        }
        assert!(by_name("nonesuch", Scale::Small).is_none());
    }

    #[test]
    fn representative_four_matches_paper() {
        let names: Vec<_> = representative_four(Scale::Small)
            .iter()
            .map(|w| w.name())
            .collect();
        assert_eq!(names, vec!["vacation", "genome", "kmeans", "intruder"]);
    }

    #[test]
    fn descriptions_are_present() {
        for w in all(Scale::Small) {
            assert!(!w.description().is_empty(), "{} missing description", w.name());
        }
    }

    #[test]
    fn word_sizes_match_figure5() {
        assert_eq!(by_name("kmeans", Scale::Small).unwrap().word_size(), 4);
        assert_eq!(by_name("vacation", Scale::Small).unwrap().word_size(), 8);
        assert_eq!(by_name("genome", Scale::Small).unwrap().word_size(), 8);
        assert_eq!(by_name("intruder", Scale::Small).unwrap().word_size(), 8);
    }
}
