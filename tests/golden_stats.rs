//! Golden-stats equivalence fence for the hot-path optimisation work.
//!
//! Unlike `tests/golden.rs` (which checks determinism within one build and
//! a handful of headline counters), this test pins the *entire* `RunStats`
//! of a few (benchmark, detector, seed) cells to exact constants captured
//! from the pre-optimisation simulator. Any change to cache indexing,
//! hashing, victim selection, scheduling order, or allocation strategy that
//! alters even one counter, histogram bucket, or time-series stamp fails
//! here — this is the "bit-identical before/after" bar for perf refactors.
//!
//! To re-baseline after an *intentional* behavioural change:
//!     cargo test --test golden_stats -- --ignored --nocapture
//! and paste the printed `Cell` rows over the `EXPECTED` table (re-checking
//! EXPERIMENTS.md in the same commit).

use asf_core::detector::DetectorKind;
use asf_machine::machine::{AdaptiveConfig, FabricKind, Machine, SimConfig, SignatureConfig};
use asf_stats::run::RunStats;
use asf_workloads::Scale;

/// FNV-1a over a canonical serialisation of every `RunStats` field —
/// [`asf_stats::digest::run_stats_digest`], the exact fold this fence
/// historically defined inline. It moved into the stats crate so the
/// serve layer's content-addressed cache stamps results with the *same*
/// digest this table pins; the constants below did not change.
fn digest(s: &RunStats) -> u64 {
    asf_stats::digest::run_stats_digest(s)
}

/// Key counters kept alongside the digest so a failure names *what* moved
/// instead of only "the hash changed".
type Key = (u64, u64, u64, u64, u64, u64, u64, u64);

fn key(s: &RunStats) -> Key {
    (
        s.tx_committed,
        s.tx_aborted,
        s.conflicts.total(),
        s.conflicts.false_total(),
        s.probes,
        s.l1_hits,
        s.l1_misses,
        s.cycles,
    )
}

/// The pinned cells: three paper-standard configurations plus one cell each
/// for the adaptive predictor (`line_heat` path) and DPTM WAR speculation
/// (`read_log` path), so every data structure touched by the hot-path
/// rewrite sits behind this fence.
fn cells() -> Vec<(&'static str, &'static str, SimConfig)> {
    vec![
        (
            "ssca2/sb4/seed=0xA5",
            "ssca2",
            SimConfig::paper_seeded(DetectorKind::SubBlock(4), 0xA5),
        ),
        (
            "vacation/baseline/seed=0x1CE",
            "vacation",
            SimConfig::paper_seeded(DetectorKind::Baseline, 0x1CE),
        ),
        (
            "intruder/perfect/seed=0x7E57",
            "intruder",
            SimConfig::paper_seeded(DetectorKind::Perfect, 0x7E57),
        ),
        ("ssca2/adaptive/seed=0xADA", "ssca2", {
            let mut c = SimConfig::paper_seeded(DetectorKind::Baseline, 0xADA);
            c.adaptive = Some(AdaptiveConfig::standard());
            c
        }),
        ("kmeans/dptm/seed=0xD9", "kmeans", {
            let mut c = SimConfig::paper_seeded(DetectorKind::Baseline, 0xD9);
            c.war_speculation = true;
            c
        }),
        // Probe-path fences: the residency-index rewrite must keep both the
        // probe-filter directory accounting and the signature (LogTM-SE)
        // detection path — which fires on cores holding *no* copy of the
        // probed line — bit-identical, not just the broadcast default.
        ("utilitymine/sb4+probefilter/seed=0xF17", "utilitymine", {
            let mut c = SimConfig::paper_seeded(DetectorKind::SubBlock(4), 0xF17);
            c.fabric = FabricKind::ProbeFilter;
            c
        }),
        ("genome/signatures1024/seed=0x516", "genome", {
            let mut c = SimConfig::paper_seeded(DetectorKind::Baseline, 0x516);
            c.signatures = Some(SignatureConfig::logtm_se());
            c
        }),
        // Spec-directory fences (PR 3): a conflict-heavy cell checked with
        // the one-lookup directory resolution (the default) — the same
        // digest must also hold under the exhaustive metadata walk, which
        // the A/B test below enforces against this very table.
        (
            "labyrinth/sb8/seed=0xD1C",
            "labyrinth",
            SimConfig::paper_seeded(DetectorKind::SubBlock(8), 0xD1C),
        ),
        (
            "vacation/sb2/seed=0x5D1",
            "vacation",
            SimConfig::paper_seeded(DetectorKind::SubBlock(2), 0x5D1),
        ),
        // The A/B halves: identical configurations forced onto the
        // exhaustive per-victim metadata walk. Pinned to the *same* digests
        // as the directory-resolved cells above — the directory may only
        // change how speculative metadata is found, never any statistic.
        ("labyrinth/sb8/seed=0xD1C/exhaustive-spec-walk", "labyrinth", {
            let mut c = SimConfig::paper_seeded(DetectorKind::SubBlock(8), 0xD1C);
            c.exhaustive_spec_walk = true;
            c
        }),
        ("vacation/sb2/seed=0x5D1/exhaustive-spec-walk", "vacation", {
            let mut c = SimConfig::paper_seeded(DetectorKind::SubBlock(2), 0x5D1);
            c.exhaustive_spec_walk = true;
            c
        }),
        // Batched-probe fences (PR 6): the same two conflict-heavy cells
        // forced onto the sequential one-victim-at-a-time reference path.
        // Pinned to the *same* digests again — batching every same-cycle
        // verdict into one spec-directory pass may only change how fast
        // probes resolve, never any statistic.
        ("labyrinth/sb8/seed=0xD1C/sequential-probes", "labyrinth", {
            let mut c = SimConfig::paper_seeded(DetectorKind::SubBlock(8), 0xD1C);
            c.sequential_probe_resolution = true;
            c
        }),
        ("vacation/sb2/seed=0x5D1/sequential-probes", "vacation", {
            let mut c = SimConfig::paper_seeded(DetectorKind::SubBlock(2), 0x5D1);
            c.sequential_probe_resolution = true;
            c
        }),
    ]
}

fn run(bench: &str, cfg: SimConfig) -> RunStats {
    let w = asf_workloads::by_name(bench, Scale::Small).expect("known benchmark");
    Machine::run(w.as_ref(), cfg).stats
}

/// Expected (digest, key) per cell, captured from the pre-optimisation
/// simulator (commit f4c5c8f lineage) at `Scale::Small`.
const EXPECTED: &[(&str, u64, Key)] = &[
    ("ssca2/sb4/seed=0xA5", 0x272ab65f4b1bfeaf, (480, 47, 47, 24, 819, 1249, 819, 14358)),
    ("vacation/baseline/seed=0x1CE", 0x99b14e079c667a11, (360, 140, 140, 100, 2034, 2216, 2034, 48190)),
    ("intruder/perfect/seed=0x7E57", 0xc333126da5733654, (520, 222, 222, 0, 687, 1064, 687, 131853)),
    ("ssca2/adaptive/seed=0xADA", 0x886cab87da6c577c, (480, 70, 70, 55, 835, 1290, 835, 16626)),
    ("kmeans/dptm/seed=0xD9", 0x164343f68462a897, (400, 82, 76, 58, 1160, 2274, 1160, 46357)),
    ("utilitymine/sb4+probefilter/seed=0xF17", 0x9dc6556de940fe6c, (336, 32, 32, 32, 1404, 867, 1404, 61031)),
    ("genome/signatures1024/seed=0x516", 0x24d3edb7c6e06347, (400, 133, 133, 111, 2303, 960, 2303, 64402)),
    ("labyrinth/sb8/seed=0xD1C", 0x82d8d9714f5ece8e, (105, 50, 37, 6, 1058, 1842, 1058, 65563)),
    ("vacation/sb2/seed=0x5D1", 0x8e06e4f7134f4fd9, (360, 94, 94, 66, 2011, 1865, 2011, 46555)),
    // Same digests as the two cells above, by design (A/B fence).
    ("labyrinth/sb8/seed=0xD1C/exhaustive-spec-walk", 0x82d8d9714f5ece8e, (105, 50, 37, 6, 1058, 1842, 1058, 65563)),
    ("vacation/sb2/seed=0x5D1/exhaustive-spec-walk", 0x8e06e4f7134f4fd9, (360, 94, 94, 66, 2011, 1865, 2011, 46555)),
    ("labyrinth/sb8/seed=0xD1C/sequential-probes", 0x82d8d9714f5ece8e, (105, 50, 37, 6, 1058, 1842, 1058, 65563)),
    ("vacation/sb2/seed=0x5D1/sequential-probes", 0x8e06e4f7134f4fd9, (360, 94, 94, 66, 2011, 1865, 2011, 46555)),
];

#[test]
fn golden_stats_bit_identical() {
    for (name, bench, cfg) in cells() {
        let stats = run(bench, cfg);
        let (d, k) = (digest(&stats), key(&stats));
        let (_, ed, ek) = EXPECTED
            .iter()
            .find(|(n, _, _)| *n == name)
            .unwrap_or_else(|| panic!("no expectation for {name}"));
        assert_eq!(
            k, *ek,
            "{name}: key counters (committed, aborted, conflicts, false, \
             probes, l1_hits, l1_misses, cycles) drifted"
        );
        assert_eq!(d, *ed, "{name}: full RunStats digest drifted");
    }
}

/// Prints the current actuals in `EXPECTED` table form; used to (re)baseline.
#[test]
#[ignore = "baseline capture helper, run with --ignored --nocapture"]
fn print_golden_stats() {
    for (name, bench, cfg) in cells() {
        let stats = run(bench, cfg);
        println!("    (\"{name}\", {:#018x}, {:?}),", digest(&stats), key(&stats));
    }
}

// ---------------------------------------------------------------------------
// Huge-tier fence (PR 7): one shard-parallel configuration pinned in both
// execution modes. The two cells share one digest constant *by construction*
// — the worker-thread count must be bit-invisible — so this extends the
// golden fence across the shard engine: any change to epoch scheduling,
// barrier ordering, or cross-shard probe routing that moves a single
// counter fails here.
// ---------------------------------------------------------------------------

fn run_shard(worker_threads: usize) -> RunStats {
    use asf_machine::hier::DirLatency;
    use asf_machine::shard::{ShardConfig, ShardEngine};
    let w = asf_workloads::streaming::by_name("smoke").expect("smoke preset");
    let base = SimConfig::paper_seeded(DetectorKind::SubBlock(8), 0x46E);
    ShardEngine::new(
        &w,
        base,
        ShardConfig {
            total_cores: 32,
            cores_per_cluster: 16,
            epoch_cycles: 4096,
            worker_threads,
            dir_latency: DirLatency::opteron_like(),
        },
    )
    .try_run()
    .expect("huge-tier golden run completes")
    .stats
}

/// Expected (digest, key) of the huge-tier cell — identical for the
/// sequential (1-thread) and parallel (4-thread) modes by design.
const EXPECTED_SHARD: (u64, Key) = (0x9ce664e0ce98b5a6, (689, 0, 0, 0, 1952, 2871, 1952, 16855));

#[test]
fn golden_stats_shard_sequential() {
    let stats = run_shard(1);
    assert_eq!(key(&stats), EXPECTED_SHARD.1, "huge-tier key counters drifted (sequential)");
    assert_eq!(digest(&stats), EXPECTED_SHARD.0, "huge-tier digest drifted (sequential)");
}

#[test]
fn golden_stats_shard_parallel() {
    let stats = run_shard(4);
    assert_eq!(key(&stats), EXPECTED_SHARD.1, "huge-tier key counters drifted (4 workers)");
    assert_eq!(digest(&stats), EXPECTED_SHARD.0, "huge-tier digest drifted (4 workers)");
}

/// Prints the huge-tier actuals; used to (re)baseline `EXPECTED_SHARD`.
#[test]
#[ignore = "baseline capture helper, run with --ignored --nocapture"]
fn print_golden_shard_stats() {
    let stats = run_shard(1);
    println!("    ({:#018x}, {:?})", digest(&stats), key(&stats));
}
