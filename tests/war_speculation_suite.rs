//! Suite-level check of the DPTM-style related-work mode: it helps the
//! WAR-dominated benchmarks and leaves committed work identical.

use asf_core::detector::DetectorKind;
use asf_machine::machine::{Machine, SimConfig};
use asf_workloads::Scale;

#[test]
fn dptm_reduces_war_dominated_suite_conflicts() {
    // vacation is WAR-dominant: DPTM mode must cut its abort count well
    // below eager baseline, while kmeans (write-window/RAW-driven) benefits
    // far less — the quantitative form of the paper's argument.
    let run = |bench: &str, mode: bool| {
        let w = asf_workloads::by_name(bench, Scale::Small).unwrap();
        let mut c = SimConfig::paper_seeded(DetectorKind::Baseline, 17);
        c.war_speculation = mode;
        Machine::run(w.as_ref(), c).stats
    };
    let vac_eager = run("vacation", false);
    let vac_dptm = run("vacation", true);
    assert!(
        (vac_dptm.tx_aborted as f64) < 0.6 * vac_eager.tx_aborted as f64,
        "vacation aborts: eager {} vs dptm {}",
        vac_eager.tx_aborted,
        vac_dptm.tx_aborted
    );
    assert!(vac_dptm.war_speculations > 0);
    // Committed work identical regardless of mode.
    assert_eq!(vac_eager.tx_committed, vac_dptm.tx_committed);
}

