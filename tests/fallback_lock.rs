//! The software fallback lock as the last line of forward progress —
//! property-tested with retries disabled (`max_retries = 0`): any abort
//! sends the transaction straight to the global lock, so the fallback path
//! runs constantly instead of rarely. Whatever the seed and workload:
//! serialization must hold and the fallback accounting must cover every
//! aborted transaction exactly.

use asf_core::detector::DetectorKind;
use asf_machine::fault::FaultPlan;
use asf_machine::machine::{Machine, SimConfig};
use asf_workloads::Scale;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn zero_retry_runs_serialize_and_account_for_every_transaction(
        seed in 0u64..1_000_000,
        bench_idx in 0usize..10,
        detector_idx in 0usize..3,
    ) {
        let w = &asf_workloads::all(Scale::Small)[bench_idx];
        let detector = [
            DetectorKind::Baseline,
            DetectorKind::SubBlock(4),
            DetectorKind::Perfect,
        ][detector_idx];
        let mut cfg = SimConfig::paper_seeded(detector, seed);
        cfg.max_retries = 0;
        let s = Machine::run(w.as_ref(), cfg).stats;

        // Serialization: nothing lost, nothing torn.
        prop_assert_eq!(s.isolation_violations, 0);
        prop_assert_eq!(s.tx_started, s.tx_committed);
        // With zero retries a transaction aborts at most once before the
        // lock: aborts and fallback commits must pair up exactly, and the
        // retry histogram can never see a second retry.
        prop_assert_eq!(s.tx_aborted, s.fallback_commits);
        prop_assert!(s.max_retries <= 1, "a second retry is impossible: {}", s.max_retries);
        prop_assert_eq!(
            s.tx_attempts,
            s.tx_committed - s.fallback_commits + s.tx_aborted
        );
    }

    #[test]
    fn zero_retry_plus_always_abort_pushes_everything_through_the_lock(
        seed in 0u64..1_000_000,
        bench_idx in 0usize..10,
    ) {
        let w = &asf_workloads::all(Scale::Small)[bench_idx];
        let mut cfg = SimConfig::paper_seeded(DetectorKind::SubBlock(4), seed);
        cfg.max_retries = 0;
        cfg.faults = FaultPlan::max_spurious();
        let s = Machine::run(w.as_ref(), cfg).stats;
        prop_assert_eq!(s.isolation_violations, 0);
        prop_assert_eq!(s.tx_started, s.tx_committed);
        // Hardware commits are impossible: the fallback lock accounts for
        // every single transaction.
        prop_assert_eq!(s.fallback_commits, s.tx_committed);
        prop_assert_eq!(s.tx_aborted, s.tx_started);
    }
}
