//! The probe filter must be outcome-equivalent to broadcast snooping: the
//! directory is conservative, so every core that *could* matter is still
//! probed — only the probe-target count shrinks.

use asf_core::detector::DetectorKind;
use asf_machine::machine::{FabricKind, Machine, SimConfig};
use asf_workloads::Scale;

fn run(bench: &str, detector: DetectorKind, fabric: FabricKind) -> asf_stats::run::RunStats {
    let w = asf_workloads::by_name(bench, Scale::Small).expect("known benchmark");
    let mut cfg = SimConfig::paper_seeded(detector, 31);
    cfg.fabric = fabric;
    Machine::run(w.as_ref(), cfg).stats
}

#[test]
fn probe_filter_is_outcome_equivalent_to_broadcast() {
    for bench in ["ssca2", "vacation", "kmeans", "intruder", "utilitymine"] {
        for detector in [DetectorKind::Baseline, DetectorKind::SubBlock(4)] {
            let b = run(bench, detector, FabricKind::Broadcast);
            let f = run(bench, detector, FabricKind::ProbeFilter);
            assert_eq!(b.cycles, f.cycles, "{bench}/{detector}: cycles diverged");
            assert_eq!(b.conflicts, f.conflicts, "{bench}/{detector}: conflicts diverged");
            assert_eq!(b.tx_attempts, f.tx_attempts, "{bench}/{detector}");
            assert_eq!(b.tx_aborted, f.tx_aborted, "{bench}/{detector}");
            assert_eq!(b.probes, f.probes, "{bench}/{detector}: probe count differs");
            assert!(
                f.probe_targets < b.probe_targets,
                "{bench}/{detector}: the filter saved nothing \
                 ({} vs {})",
                f.probe_targets,
                b.probe_targets
            );
            assert_eq!(b.isolation_violations, 0);
            assert_eq!(f.isolation_violations, 0);
        }
    }
}

#[test]
fn broadcast_targets_are_exactly_n_minus_one_per_probe() {
    let b = run("ssca2", DetectorKind::Baseline, FabricKind::Broadcast);
    assert_eq!(b.probe_targets, b.probes * 7, "8-core broadcast visits 7 per probe");
}

#[test]
fn filter_savings_are_substantial_on_private_heavy_workloads() {
    // intruder's packet areas are thread-private: most lines have at most
    // one sharer, so the filter should cut probe traffic by a lot.
    let b = run("intruder", DetectorKind::Baseline, FabricKind::Broadcast);
    let f = run("intruder", DetectorKind::Baseline, FabricKind::ProbeFilter);
    let saved = 1.0 - f.probe_targets as f64 / b.probe_targets as f64;
    assert!(saved > 0.3, "expected >30% probe-target savings, got {:.1}%", saved * 100.0);
}
