//! The probe filter must be outcome-equivalent to broadcast snooping: the
//! directory is conservative, so every core that *could* matter is still
//! probed — only the probe-target count shrinks.
//!
//! The second half of this file pins the residency-index walk narrowing
//! (DESIGN.md §10) the same way: skipping cores the index says hold
//! nothing must leave every statistic — including accounted probe traffic
//! — bit-identical to walking every fabric-selected core.

use asf_core::detector::DetectorKind;
use asf_machine::machine::{FabricKind, Machine, SimConfig, SignatureConfig};
use asf_machine::txprog::{ScriptedWorkload, TxAttempt, TxOp, WorkItem};
use asf_mem::addr::Addr;
use asf_mem::rng::SimRng;
use asf_workloads::Scale;

fn run(bench: &str, detector: DetectorKind, fabric: FabricKind) -> asf_stats::run::RunStats {
    let w = asf_workloads::by_name(bench, Scale::Small).expect("known benchmark");
    let mut cfg = SimConfig::paper_seeded(detector, 31);
    cfg.fabric = fabric;
    Machine::run(w.as_ref(), cfg).stats
}

#[test]
fn probe_filter_is_outcome_equivalent_to_broadcast() {
    for bench in ["ssca2", "vacation", "kmeans", "intruder", "utilitymine"] {
        for detector in [DetectorKind::Baseline, DetectorKind::SubBlock(4)] {
            let b = run(bench, detector, FabricKind::Broadcast);
            let f = run(bench, detector, FabricKind::ProbeFilter);
            assert_eq!(b.cycles, f.cycles, "{bench}/{detector}: cycles diverged");
            assert_eq!(b.conflicts, f.conflicts, "{bench}/{detector}: conflicts diverged");
            assert_eq!(b.tx_attempts, f.tx_attempts, "{bench}/{detector}");
            assert_eq!(b.tx_aborted, f.tx_aborted, "{bench}/{detector}");
            assert_eq!(b.probes, f.probes, "{bench}/{detector}: probe count differs");
            assert!(
                f.probe_targets < b.probe_targets,
                "{bench}/{detector}: the filter saved nothing \
                 ({} vs {})",
                f.probe_targets,
                b.probe_targets
            );
            assert_eq!(b.isolation_violations, 0);
            assert_eq!(f.isolation_violations, 0);
        }
    }
}

#[test]
fn broadcast_targets_are_exactly_n_minus_one_per_probe() {
    let b = run("ssca2", DetectorKind::Baseline, FabricKind::Broadcast);
    assert_eq!(b.probe_targets, b.probes * 7, "8-core broadcast visits 7 per probe");
}

/// A deterministic pseudo-random workload mixing hot shared lines (every
/// thread hits them — multi-sharer probes) with thread-private regions
/// (zero-sharer probes, where the residency index pays off), plus enough
/// increments to keep transactions conflicting and aborting.
fn randomized_workload(seed: u64, threads: usize) -> ScriptedWorkload {
    const SHARED_BASE: u64 = 0x4_0000;
    const SHARED_SLOTS: u64 = 24; // 3 lines x 8 slots: heavy false sharing
    const PRIVATE_BASE: u64 = 0x8_0000;
    let mut scripts = Vec::new();
    for tid in 0..threads {
        let mut rng = SimRng::derive(seed, tid as u64);
        let mut items = Vec::new();
        for _ in 0..rng.range(8, 16) {
            let mut ops = Vec::new();
            for _ in 0..rng.range(2, 9) {
                let addr = if rng.chance(1, 2) {
                    Addr(SHARED_BASE + rng.below(SHARED_SLOTS) * 8)
                } else {
                    Addr(PRIVATE_BASE + ((tid as u64) << 12) + rng.below(32) * 8)
                };
                if rng.chance(1, 3) {
                    ops.push(TxOp::Update { addr, size: 8, delta: 1 });
                } else {
                    ops.push(TxOp::Read { addr, size: 8 });
                }
            }
            items.push(WorkItem::Tx(TxAttempt::new(ops)));
            if rng.chance(1, 4) {
                items.push(WorkItem::Compute { cycles: rng.range(10, 200) });
            }
        }
        scripts.push(items);
    }
    ScriptedWorkload { name: "randomized", scripts }
}

/// Run the randomized workload and return the full stats, optionally with
/// the residency index disabled for walk narrowing (exhaustive walk) and/or
/// the per-probe exactness cross-check enabled.
fn run_randomized(cfg_mut: impl Fn(&mut SimConfig)) -> asf_stats::run::RunStats {
    let w = randomized_workload(0xFABEC, 6);
    let mut cfg = SimConfig::paper_seeded(DetectorKind::SubBlock(4), 0xFAB);
    cfg_mut(&mut cfg);
    Machine::run(&w, cfg).stats
}

/// The tentpole equivalence: narrowing the probe walk to index-resident
/// cores changes *nothing* observable — not cycles, not conflicts, not the
/// accounted probe traffic — versus walking every fabric-selected core.
#[test]
fn residency_narrowed_walk_equals_exhaustive_walk() {
    for fabric in [FabricKind::Broadcast, FabricKind::ProbeFilter] {
        for signatures in [None, Some(SignatureConfig::logtm_se())] {
            let set = |c: &mut SimConfig| {
                c.fabric = fabric;
                c.signatures = signatures;
            };
            let narrowed = run_randomized(set);
            let exhaustive = run_randomized(|c| {
                set(c);
                c.exhaustive_probe_walk = true;
            });
            assert_eq!(
                narrowed, exhaustive,
                "{fabric:?}/signatures={}: residency narrowing changed results",
                signatures.is_some()
            );
            assert!(narrowed.tx_aborted > 0, "workload too tame to exercise conflicts");
        }
    }
}

/// The exactness cross-check (every probe, not the debug-build sampling)
/// passes on a conflict-heavy run, and the index is exact at the end too.
#[test]
fn residency_index_stays_exact_under_verification() {
    let w = randomized_workload(0xFABEC, 6);
    let mut cfg = SimConfig::paper_seeded(DetectorKind::SubBlock(4), 0xFAB);
    cfg.verify_residency = true;
    let mut m = Machine::new(&w, cfg);
    let out = m.run_to_completion();
    m.verify_residency_index().expect("index exact after run");
    assert!(out.stats.tx_aborted > 0);
}

/// PR 3 equivalence: resolving victim speculative state from the global
/// spec directory (one lookup + bit ops) must leave every statistic
/// bit-identical to the exhaustive per-victim metadata walk (L1 +
/// `retained` per candidate), across fabrics and signature mode, on a
/// randomized conflict-heavy workload.
#[test]
fn spec_directory_resolution_equals_exhaustive_metadata_walk() {
    for fabric in [FabricKind::Broadcast, FabricKind::ProbeFilter] {
        for signatures in [None, Some(SignatureConfig::logtm_se())] {
            let set = |c: &mut SimConfig| {
                c.fabric = fabric;
                c.signatures = signatures;
            };
            let directory = run_randomized(set);
            let walked = run_randomized(|c| {
                set(c);
                c.exhaustive_spec_walk = true;
            });
            assert_eq!(
                directory, walked,
                "{fabric:?}/signatures={}: spec-directory resolution changed results",
                signatures.is_some()
            );
            assert!(directory.tx_aborted > 0, "workload too tame to exercise conflicts");
        }
    }
    // Both probe-path indexes disabled at once must also agree (the two
    // exhaustive modes compose).
    let both_off = run_randomized(|c| {
        c.exhaustive_probe_walk = true;
        c.exhaustive_spec_walk = true;
    });
    assert_eq!(both_off, run_randomized(|_| ()));
}

/// The spec-directory cross-check (every probe) passes on a conflict-heavy
/// run, and the directory is exact — both directions — at the end too.
#[test]
fn spec_directory_stays_exact_under_verification() {
    let w = randomized_workload(0xFABEC, 6);
    let mut cfg = SimConfig::paper_seeded(DetectorKind::SubBlock(4), 0xFAB);
    cfg.verify_spec_directory = true;
    let mut m = Machine::new(&w, cfg);
    let out = m.run_to_completion();
    m.verify_spec_directory_index().expect("directory exact after run");
    assert!(out.stats.tx_aborted > 0);
}

#[test]
fn filter_savings_are_substantial_on_private_heavy_workloads() {
    // intruder's packet areas are thread-private: most lines have at most
    // one sharer, so the filter should cut probe traffic by a lot.
    let b = run("intruder", DetectorKind::Baseline, FabricKind::Broadcast);
    let f = run("intruder", DetectorKind::Baseline, FabricKind::ProbeFilter);
    let saved = 1.0 - f.probe_targets as f64 / b.probe_targets as f64;
    assert!(saved > 0.3, "expected >30% probe-target savings, got {:.1}%", saved * 100.0);
}
