//! Property-based stress: random transactional workloads over a small
//! address pool must never violate isolation, lose counter updates, or
//! hang, under any detector. This is the machine-level analogue of the
//! detector-level proptests in `asf-core`.

use asf_core::detector::DetectorKind;
use asf_machine::machine::{Machine, SimConfig};
use asf_machine::txprog::{ScriptedWorkload, TxAttempt, TxOp, WorkItem};
use asf_mem::addr::Addr;
use asf_mem::config::MachineConfig;
use proptest::prelude::*;

/// A compact description of one random transaction.
#[derive(Clone, Debug)]
struct RandTx {
    ops: Vec<RandOp>,
}

#[derive(Clone, Debug)]
enum RandOp {
    Read { slot: u8, size: u8 },
    Incr { slot: u8 },
    Compute { cycles: u16 },
}

/// Slots live on 4 lines, 8 slots each, so transactions share lines
/// aggressively (maximum false-sharing pressure).
const SLOTS: u8 = 32;
const BASE: u64 = 0x2_0000;

fn slot_addr(slot: u8) -> Addr {
    Addr(BASE + (slot as u64) * 8)
}

fn arb_op() -> impl Strategy<Value = RandOp> {
    prop_oneof![
        (0..SLOTS, 1u8..=8).prop_map(|(slot, size)| RandOp::Read { slot, size }),
        (0..SLOTS).prop_map(|slot| RandOp::Incr { slot }),
        (1u16..200).prop_map(|cycles| RandOp::Compute { cycles }),
    ]
}

fn arb_tx() -> impl Strategy<Value = RandTx> {
    prop::collection::vec(arb_op(), 1..8).prop_map(|ops| RandTx { ops })
}

fn arb_thread() -> impl Strategy<Value = Vec<RandTx>> {
    prop::collection::vec(arb_tx(), 1..12)
}

fn arb_detector() -> impl Strategy<Value = DetectorKind> {
    prop::sample::select(DetectorKind::paper_set())
}

fn build_workload(threads: &[Vec<RandTx>]) -> (ScriptedWorkload, Vec<u64>) {
    let mut expected = vec![0u64; SLOTS as usize];
    let mut scripts = Vec::new();
    for thread in threads {
        let mut items = Vec::new();
        for t in thread {
            let mut ops = Vec::new();
            for op in &t.ops {
                match *op {
                    RandOp::Read { slot, size } => {
                        ops.push(TxOp::Read { addr: slot_addr(slot), size: size as u32 })
                    }
                    RandOp::Incr { slot } => {
                        expected[slot as usize] += 1;
                        ops.push(TxOp::Update { addr: slot_addr(slot), size: 8, delta: 1 })
                    }
                    RandOp::Compute { cycles } => {
                        ops.push(TxOp::Compute { cycles: cycles as u64 })
                    }
                }
            }
            items.push(WorkItem::Tx(TxAttempt::new(ops)));
        }
        scripts.push(items);
    }
    (ScriptedWorkload { name: "random", scripts }, expected)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All committed increments survive, exactly once each, and the
    /// isolation oracle stays silent — under every detector.
    #[test]
    fn random_workloads_are_serializable(
        threads in prop::collection::vec(arb_thread(), 2..5),
        detector in arb_detector(),
        enable_dirty in prop::bool::weighted(0.8),
        seed in 0u64..1000,
    ) {
        // Soundness requires the dirty mechanism for sub-line detectors;
        // only pair `enable_dirty = false` with the baseline.
        prop_assume!(enable_dirty || detector == DetectorKind::Baseline);
        let (workload, expected) = build_workload(&threads);
        let mut cfg = SimConfig::paper_seeded(detector, seed);
        cfg.machine = MachineConfig::opteron_with_cores(threads.len());
        cfg.enable_dirty = enable_dirty;
        cfg.max_retries = 16;
        // Exactness cross-checks of the residency index (DESIGN.md §10)
        // and the speculative-state directory (DESIGN.md §11) on every
        // probe — free coverage from the random stress.
        cfg.verify_residency = true;
        cfg.verify_spec_directory = true;
        let out = Machine::run(&workload, cfg);
        prop_assert_eq!(out.stats.isolation_violations, 0);
        let total_txns: u64 = threads.iter().map(|t| t.len() as u64).sum();
        prop_assert_eq!(out.stats.tx_committed, total_txns);
        for (slot, &want) in expected.iter().enumerate() {
            let got = out.memory.read_u64(slot_addr(slot as u8), 8);
            prop_assert_eq!(got, want, "slot {} lost updates", slot);
        }
    }
}
