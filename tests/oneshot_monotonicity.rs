//! End-to-end granularity monotonicity: for *single-conflict-window*
//! scenarios (one writer op, one reader op, scripted timing), the set of
//! detectors that flag a conflict is exactly a prefix of the
//! coarse-to-fine chain — the machine-level mirror of the mask-algebra
//! proptests in `asf-core`.
//!
//! This holds exactly only for one-shot scenarios: in full runs, an abort
//! changes subsequent timing, so counts are only statistically ordered
//! (covered by `detector_ordering.rs`).

use asf_core::detector::DetectorKind;
use asf_machine::machine::{Machine, SimConfig};
use asf_machine::txprog::{ScriptedWorkload, TxAttempt, TxOp, WorkItem};
use asf_mem::addr::Addr;
use asf_mem::config::MachineConfig;
use proptest::prelude::*;

#[derive(Clone, Copy, Debug)]
enum Kind {
    ReadThenRemoteWrite,
    WriteThenRemoteRead,
}

fn scenario(kind: Kind, first_off: u64, first_len: u32, second_off: u64, second_len: u32)
-> ScriptedWorkload {
    let base = 0x7_0000u64;
    let first = Addr(base + first_off);
    let second = Addr(base + second_off);
    let (op0, op1) = match kind {
        Kind::ReadThenRemoteWrite => (
            TxOp::Read { addr: first, size: first_len },
            TxOp::Write { addr: second, size: second_len, value: 1 },
        ),
        Kind::WriteThenRemoteRead => (
            TxOp::Write { addr: first, size: first_len, value: 1 },
            TxOp::Read { addr: second, size: second_len },
        ),
    };
    ScriptedWorkload {
        name: "oneshot",
        scripts: vec![
            vec![WorkItem::Tx(TxAttempt::new(vec![
                op0,
                TxOp::WaitUntil { cycle: 3_000 },
            ]))],
            vec![WorkItem::Tx(TxAttempt::new(vec![
                TxOp::WaitUntil { cycle: 1_000 },
                op1,
            ]))],
        ],
    }
}

fn conflicts(w: &ScriptedWorkload, d: DetectorKind) -> u64 {
    let mut cfg = SimConfig::paper(d);
    cfg.machine = MachineConfig::opteron_with_cores(2);
    Machine::run(w, cfg).stats.conflicts.total()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn one_shot_conflicts_form_a_granularity_prefix(
        read_then_write in prop::bool::ANY,
        first_off in 0u64..57,
        first_len in 1u32..8,
        second_off in 0u64..57,
        second_len in 1u32..8,
    ) {
        let kind = if read_then_write {
            Kind::ReadThenRemoteWrite
        } else {
            Kind::WriteThenRemoteRead
        };
        let w = scenario(kind, first_off, first_len, second_off, second_len);
        // Coarse → fine. (Read/write scenarios never trigger the WAW-any
        // divergence, so sub-block(64) and Perfect agree too.)
        let chain = [
            DetectorKind::Baseline,
            DetectorKind::SubBlock(2),
            DetectorKind::SubBlock(4),
            DetectorKind::SubBlock(8),
            DetectorKind::SubBlock(16),
            DetectorKind::SubBlock(32),
            DetectorKind::SubBlock(64),
            DetectorKind::Perfect,
        ];
        let flags: Vec<bool> = chain.iter().map(|&d| conflicts(&w, d) > 0).collect();
        // Monotone: once a finer detector stops flagging, no finer one flags.
        for pair in flags.windows(2) {
            prop_assert!(
                pair[0] || !pair[1],
                "finer detector flagged what a coarser one missed: {flags:?}"
            );
        }
        // Ground truth: the perfect system flags iff bytes truly overlap.
        let truly = first_off < second_off + second_len as u64
            && second_off < first_off + first_len as u64;
        prop_assert_eq!(*flags.last().unwrap(), truly);
        // Baseline flags iff the accesses share the line — always true here.
        prop_assert!(flags[0], "same-line read/write must conflict at line granularity");
    }
}
