//! Property-based stress with *adversarial timing*: random transactions
//! gated by random `WaitUntil` barriers explore interleavings that the
//! free-running fuzz (`random_workloads.rs`) rarely hits — long-lived
//! speculative windows, simultaneous starts, stragglers racing commits.

use asf_core::detector::DetectorKind;
use asf_machine::machine::{Machine, SimConfig};
use asf_machine::txprog::{ScriptedWorkload, TxAttempt, TxOp, WorkItem};
use asf_mem::addr::Addr;
use asf_mem::config::MachineConfig;
use proptest::prelude::*;

const SLOTS: u8 = 16; // 2 lines — maximum line sharing
const BASE: u64 = 0x9_0000;

fn slot_addr(slot: u8) -> Addr {
    Addr(BASE + (slot as u64) * 8)
}

#[derive(Clone, Debug)]
struct GatedTx {
    start_gate: u16,
    ops: Vec<(bool, u8, u16)>, // (is_update, slot, mid_gate_delta)
}

fn arb_tx() -> impl Strategy<Value = GatedTx> {
    (
        0u16..2_000,
        prop::collection::vec((prop::bool::ANY, 0..SLOTS, 0u16..500), 1..5),
    )
        .prop_map(|(start_gate, ops)| GatedTx { start_gate, ops })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn adversarial_interleavings_stay_serializable(
        threads in prop::collection::vec(prop::collection::vec(arb_tx(), 1..6), 2..4),
        detector in prop::sample::select(DetectorKind::paper_set()),
        seed in 0u64..500,
    ) {
        let mut expected = vec![0u64; SLOTS as usize];
        let scripts: Vec<Vec<WorkItem>> = threads
            .iter()
            .map(|txs| {
                txs.iter()
                    .map(|t| {
                        let mut ops = vec![TxOp::WaitUntil { cycle: t.start_gate as u64 }];
                        let mut gate = t.start_gate as u64;
                        for &(is_update, slot, delta) in &t.ops {
                            gate += delta as u64;
                            ops.push(TxOp::WaitUntil { cycle: gate });
                            if is_update {
                                expected[slot as usize] += 1;
                                ops.push(TxOp::Update {
                                    addr: slot_addr(slot),
                                    size: 8,
                                    delta: 1,
                                });
                            } else {
                                ops.push(TxOp::Read { addr: slot_addr(slot), size: 8 });
                            }
                        }
                        WorkItem::Tx(TxAttempt::new(ops))
                    })
                    .collect()
            })
            .collect();
        let total_txns: u64 = scripts.iter().map(|s| s.len() as u64).sum();
        let w = ScriptedWorkload { name: "gated", scripts };
        let mut cfg = SimConfig::paper_seeded(detector, seed);
        cfg.machine = MachineConfig::opteron_with_cores(threads.len());
        cfg.max_retries = 24;
        cfg.verify_residency = true;
        cfg.verify_spec_directory = true;
        let out = Machine::run(&w, cfg);
        prop_assert_eq!(out.stats.isolation_violations, 0);
        prop_assert_eq!(out.stats.tx_committed, total_txns);
        for (slot, &want) in expected.iter().enumerate() {
            prop_assert_eq!(
                out.memory.read_u64(slot_addr(slot as u8), 8),
                want,
                "slot {} lost updates under {}",
                slot,
                detector
            );
        }
    }
}
