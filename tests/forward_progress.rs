//! Forward-progress guarantees under injected pressure, and the typed
//! watchdog. Three behaviours are pinned:
//!
//! 1. With maximal spurious-abort pressure (no transaction can ever commit
//!    in hardware) the backoff → fallback-lock chain still carries every
//!    workload to completion — no watchdog, nothing lost.
//! 2. A genuinely livelocked configuration (fallback disabled) returns
//!    `SimError::Watchdog` with a `Livelock` verdict and a diagnostic dump
//!    instead of panicking.
//! 3. One starved core among committing peers is classified `Starvation`,
//!    not `Livelock`.

use asf_core::detector::DetectorKind;
use asf_core::progress::StallVerdict;
use asf_machine::error::SimError;
use asf_machine::fault::FaultPlan;
use asf_machine::machine::{Machine, SimConfig};
use asf_machine::txprog::{ScriptedWorkload, TxAttempt, TxOp, WorkItem};
use asf_mem::addr::Addr;
use asf_workloads::Scale;

#[test]
fn max_spurious_pressure_cannot_stop_the_suite() {
    for w in asf_workloads::all(Scale::Small) {
        let mut cfg = SimConfig::paper_seeded(DetectorKind::SubBlock(4), 17);
        cfg.faults = FaultPlan::max_spurious();
        let out = Machine::try_run(w.as_ref(), cfg)
            .unwrap_or_else(|e| panic!("{} hit the watchdog: {e}", w.name()));
        let s = out.stats;
        assert_eq!(s.tx_started, s.tx_committed, "{}: transactions lost", w.name());
        assert_eq!(s.isolation_violations, 0, "{}", w.name());
        // Hardware commits are impossible — only the fallback lock commits.
        assert_eq!(
            s.fallback_commits, s.tx_committed,
            "{}: a transaction committed in hardware under always-abort",
            w.name()
        );
    }
}

fn contended_workload(attempt_len: usize) -> ScriptedWorkload {
    let hot = Addr(0x9000);
    // Core 0: one long transaction over the hot line plus private lines.
    let mut long_ops = vec![TxOp::Write { addr: hot, size: 8, value: 1 }];
    for i in 0..attempt_len {
        long_ops.push(TxOp::Update { addr: Addr(0xA000 + 64 * i as u64), size: 8, delta: 1 });
    }
    // Cores 1–3: an endless stream of short transactions on the hot line.
    let short: Vec<WorkItem> = (0..50_000)
        .map(|_| {
            WorkItem::Tx(TxAttempt::new(vec![TxOp::Update { addr: hot, size: 8, delta: 1 }]))
        })
        .collect();
    ScriptedWorkload {
        name: "contended",
        scripts: vec![
            vec![WorkItem::Tx(TxAttempt::new(long_ops))],
            short.clone(),
            short.clone(),
            short,
        ],
    }
}

#[test]
fn forced_livelock_is_a_typed_error_with_a_diagnostic_dump() {
    // Fallback disabled (max_retries = u32::MAX) + every transactional op
    // aborts: nobody can ever commit. The watchdog must return a value,
    // classify the stall as livelock, and dump per-core state.
    let w = contended_workload(4);
    let mut cfg = SimConfig::paper_seeded(DetectorKind::SubBlock(4), 23);
    cfg.faults = FaultPlan::max_spurious();
    cfg.max_retries = u32::MAX;
    cfg.max_steps = 20_000;
    let err = Machine::try_run(&w, cfg).expect_err("must trip the watchdog");
    let SimError::Watchdog(report) = err.clone() else {
        panic!("expected a watchdog error, got {err}");
    };
    assert_eq!(report.verdict, StallVerdict::Livelock, "\n{report}");
    assert_eq!(report.total_commits, 0);
    assert!(report.total_aborts > 0);
    assert_eq!(report.cores.len(), 8);
    assert!(report.cores.iter().any(|c| c.streak >= 4), "\n{report}");
    let dump = err.to_string();
    assert!(dump.contains("watchdog"), "{dump}");
    assert!(dump.contains("livelock"), "{dump}");
    assert!(dump.contains("core  0"), "{dump}");
    assert!(dump.contains("fallback lock"), "{dump}");
}

#[test]
fn one_starved_core_among_committing_peers_is_starvation() {
    // No injected faults — pure contention: core 0's long transaction is
    // repeatedly killed by the short writers, which keep committing. With
    // the fallback disabled core 0 can never win, so at watchdog time the
    // evidence says starvation (someone progresses), not livelock.
    let w = contended_workload(30);
    let mut cfg = SimConfig::paper_seeded(DetectorKind::SubBlock(4), 29);
    cfg.max_retries = u32::MAX;
    cfg.max_steps = 40_000;
    let err = Machine::try_run(&w, cfg).expect_err("core 0 can never finish");
    let SimError::Watchdog(report) = err else {
        panic!("expected a watchdog error");
    };
    assert_eq!(report.verdict, StallVerdict::Starvation, "\n{report}");
    assert!(report.total_commits > 0, "\n{report}");
    let core0 = &report.cores[0];
    assert_eq!(core0.commits, 0, "\n{report}");
    assert!(core0.streak >= 4, "\n{report}");
}

#[test]
fn infallible_run_still_panics_for_compatibility() {
    // `Machine::run` keeps the old contract (panic) but now panics with
    // the full diagnostic text of the typed error.
    let w = contended_workload(4);
    let mut cfg = SimConfig::paper_seeded(DetectorKind::SubBlock(4), 23);
    cfg.faults = FaultPlan::max_spurious();
    cfg.max_retries = u32::MAX;
    cfg.max_steps = 20_000;
    let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| Machine::run(&w, cfg)))
        .expect_err("must panic");
    let msg = panic
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("watchdog"), "{msg}");
    assert!(msg.contains("verdict"), "{msg}");
}
