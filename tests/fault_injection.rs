//! The deterministic fault layer: reproducibility, bit-transparency of
//! zero-rate plans, and the accounting contract (injected faults live in
//! `FaultStats`, never in the paper's abort taxonomy).

use asf_core::detector::DetectorKind;
use asf_machine::fault::{FaultPlan, FaultRate};
use asf_machine::machine::{Machine, SimConfig};
use asf_stats::run::RunStats;
use asf_workloads::Scale;

fn run(bench: &str, plan: FaultPlan, seed: u64) -> RunStats {
    let w = asf_workloads::by_name(bench, Scale::Small).expect("known benchmark");
    let mut cfg = SimConfig::paper_seeded(DetectorKind::SubBlock(4), seed);
    cfg.faults = plan;
    Machine::run(w.as_ref(), cfg).stats
}

#[test]
fn zero_rate_plan_is_bit_transparent() {
    // A config whose fault plan is all-zeros must be indistinguishable —
    // down to every stat — from one that never mentions faults (the
    // golden-stats digests enforce the same property against history).
    for bench in ["ssca2", "vacation", "intruder"] {
        let w = asf_workloads::by_name(bench, Scale::Small).unwrap();
        let clean = Machine::run(w.as_ref(), SimConfig::paper_seeded(DetectorKind::SubBlock(4), 5));
        let zeroed = run(bench, FaultPlan::none(), 5);
        assert_eq!(clean.stats, zeroed, "{bench}: zero-rate plan changed the run");
        assert!(zeroed.faults.is_zero());
    }
}

#[test]
fn faulty_runs_are_deterministic() {
    let a = run("vacation", FaultPlan::heavy(), 9);
    let b = run("vacation", FaultPlan::heavy(), 9);
    assert_eq!(a, b, "same seed + same plan must replay exactly");
    assert!(a.faults.injected_total() > 0, "heavy plan injected nothing");
    let c = run("vacation", FaultPlan::heavy(), 10);
    assert_ne!(a.faults, c.faults, "fault stream must depend on the seed");
}

#[test]
fn each_fault_class_lands_in_its_own_counter() {
    let only = |f: fn(&mut FaultPlan)| {
        let mut p = FaultPlan::none();
        f(&mut p);
        run("intruder", p, 3).faults
    };
    let spurious = only(|p| p.spurious_abort = FaultRate::new(1, 8));
    assert!(spurious.spurious_op_aborts > 0);
    assert_eq!(spurious.false_probe_conflicts, 0);
    assert_eq!(spurious.capacity_spikes, 0);
    assert_eq!(spurious.delayed_probes, 0);

    let probe = only(|p| p.false_probe_conflict = FaultRate::new(1, 4));
    assert!(probe.false_probe_conflicts > 0);
    assert_eq!(probe.spurious_op_aborts, 0);

    let spike = only(|p| {
        p.capacity_spike = FaultRate::new(1, 16);
        p.spike_cycles = 2_000;
    });
    assert!(spike.capacity_spikes > 0);
    assert!(spike.capacity_spike_aborts >= spike.capacity_spikes);

    let delay = only(|p| {
        p.delayed_probe = FaultRate::new(1, 4);
        p.delay_cycles = 300;
    });
    assert!(delay.delayed_probes > 0);
    assert_eq!(delay.delay_cycles, delay.delayed_probes * 300);
    // Pure latency noise: nothing aborts because of it.
    assert_eq!(delay.spurious_aborts, 0);
    assert_eq!(delay.capacity_spike_aborts, 0);
}

#[test]
fn injected_aborts_stay_out_of_the_paper_taxonomy() {
    // Spurious-class aborts (op injections and false probe conflicts) are
    // counted in FaultStats only; `aborts_by_cause` keeps the paper's
    // categories. Every abort is in exactly one of the two books.
    let mut plan = FaultPlan::none();
    plan.spurious_abort = FaultRate::new(1, 8);
    plan.false_probe_conflict = FaultRate::new(1, 8);
    let s = run("kmeans", plan, 7);
    assert!(s.faults.spurious_aborts > 0);
    let taxonomy: u64 = s.aborts_by_cause.iter().sum();
    assert_eq!(
        s.tx_aborted,
        taxonomy + s.faults.spurious_aborts,
        "abort books must partition tx_aborted"
    );
}

#[test]
fn delayed_probes_only_cost_time() {
    let clean = run("genome", FaultPlan::none(), 13);
    let mut plan = FaultPlan::none();
    plan.delayed_probe = FaultRate::new(1, 2);
    plan.delay_cycles = 500;
    let delayed = run("genome", plan, 13);
    assert!(delayed.cycles > clean.cycles, "heavy delays must slow the run");
    assert_eq!(delayed.tx_committed, clean.tx_committed);
}
