//! Signature-based conflict detection (LogTM-SE related-work mode):
//! correctness and the trade-offs the paper's §II gestures at — unbounded
//! footprints (no capacity aborts) versus alias-induced false conflicts.

use asf_core::detector::DetectorKind;
use asf_machine::machine::{Machine, SimConfig, SignatureConfig};
use asf_machine::txprog::{ScriptedWorkload, TxAttempt, TxOp, WorkItem};
use asf_mem::addr::Addr;
use asf_mem::config::MachineConfig;
use asf_workloads::Scale;

fn sig_cfg(bits: usize, seed: u64) -> SimConfig {
    let mut c = SimConfig::paper_seeded(DetectorKind::Baseline, seed);
    c.signatures = Some(SignatureConfig { bits, hashes: 4 });
    c
}

#[test]
fn signature_mode_is_serializable_across_the_suite() {
    for w in asf_workloads::all(Scale::Small) {
        let out = Machine::run(w.as_ref(), sig_cfg(1024, 41));
        assert_eq!(
            out.stats.isolation_violations, 0,
            "{}: signatures must remain sound",
            w.name()
        );
        assert_eq!(out.stats.tx_started, out.stats.tx_committed, "{}", w.name());
    }
}

#[test]
fn signature_counter_increments_are_exact() {
    let item = WorkItem::Tx(TxAttempt::new(vec![
        TxOp::Update { addr: Addr(0x3000), size: 8, delta: 1 },
        TxOp::Compute { cycles: 50 },
    ]));
    let w = ScriptedWorkload {
        name: "sig-counter",
        scripts: (0..4).map(|_| vec![item.clone(); 20]).collect(),
    };
    let mut c = sig_cfg(1024, 3);
    c.machine = MachineConfig::opteron_with_cores(4);
    let out = Machine::run(&w, c);
    assert_eq!(out.memory.read_u64(Addr(0x3000), 8), 80);
}

#[test]
fn signatures_remove_capacity_aborts_from_yada() {
    // The defining LogTM advantage: conflict state decoupled from the
    // cache. yada — which the best-effort ASF cannot run without the
    // fallback lock — completes transactionally under signatures.
    let w = asf_workloads::excluded::Yada::new(Scale::Small);
    let mut cfg = sig_cfg(4096, 9);
    cfg.max_retries = 32;
    let out = Machine::run(&w, cfg);
    assert_eq!(out.stats.aborts_by_cause[2], 0, "no capacity aborts under signatures");
    assert_eq!(out.stats.isolation_violations, 0);
    // yada stays conflict-heavy (its 160-line cavities genuinely overlap),
    // but the *capacity* pathology — the paper's stated reason to exclude
    // it — is gone: compare against baseline ASF on the same input.
    let mut base_cfg = SimConfig::paper_seeded(DetectorKind::Baseline, 9);
    base_cfg.max_retries = 32;
    let base = Machine::run(&w, base_cfg).stats;
    assert!(base.aborts_by_cause[2] > 0, "baseline must capacity-abort");
    assert!(
        out.stats.fallback_commits < base.fallback_commits,
        "signatures must need the lock less: {} vs {}",
        out.stats.fallback_commits,
        base.fallback_commits
    );
}

#[test]
fn small_signatures_alias_large_ones_rarely() {
    // labyrinth's big read sets fill a small filter: alias conflicts
    // appear. A big filter stays quiet.
    let run = |bits| {
        let w = asf_workloads::by_name("labyrinth", Scale::Small).unwrap();
        Machine::run(w.as_ref(), sig_cfg(bits, 17)).stats
    };
    let small = run(128);
    let large = run(8192);
    assert!(
        small.sig_alias_conflicts > large.sig_alias_conflicts,
        "aliasing must shrink with filter size: {} vs {}",
        small.sig_alias_conflicts,
        large.sig_alias_conflicts
    );
    assert!(small.sig_alias_conflicts > 0, "128-bit filters must alias on labyrinth");
}

#[test]
fn signatures_cannot_fix_intra_line_false_sharing() {
    // Line-granular by construction: the false-sharing archetype still
    // aborts, unlike under sub-blocking.
    let w = ScriptedWorkload {
        name: "sig-false-share",
        scripts: vec![
            vec![WorkItem::Tx(TxAttempt::new(vec![
                TxOp::Read { addr: Addr(0x5000), size: 8 },
                TxOp::WaitUntil { cycle: 3_000 },
            ]))],
            vec![WorkItem::Tx(TxAttempt::new(vec![
                TxOp::WaitUntil { cycle: 1_000 },
                TxOp::Write { addr: Addr(0x5020), size: 8, value: 1 },
            ]))],
        ],
    };
    let mut c = sig_cfg(4096, 5);
    c.machine = MachineConfig::opteron_with_cores(2);
    let out = Machine::run(&w, c);
    assert!(
        out.stats.conflicts.false_total() >= 1,
        "signatures are line-granular and must flag the false WAR"
    );
    assert_eq!(out.stats.sig_alias_conflicts, 0, "that conflict is not an alias");
}
