//! Cross-crate correctness: every benchmark kernel, under every detector,
//! must preserve transactional semantics — no isolation violations, no lost
//! updates, deterministic replay.

use asf_core::detector::DetectorKind;
use asf_machine::machine::{Machine, SimConfig};
use asf_workloads::Scale;

fn detectors() -> Vec<DetectorKind> {
    DetectorKind::paper_set()
}

/// Paper config with the residency-index exactness cross-check enabled on
/// every probe (DESIGN.md §10) — this whole suite doubles as its stress
/// test.
fn cfg(d: DetectorKind, seed: u64) -> SimConfig {
    let mut c = SimConfig::paper_seeded(d, seed);
    c.verify_residency = true;
    c.verify_spec_directory = true;
    c
}

#[test]
fn no_isolation_violations_across_suite() {
    // Full detector set on three representative benchmarks, the headline
    // trio (baseline/sb4/perfect) on the rest — keeps the suite fast while
    // covering every (workload, detector) class.
    for w in asf_workloads::all(Scale::Small) {
        let full = matches!(w.name(), "kmeans" | "vacation" | "utilitymine");
        let ds: Vec<_> = if full {
            detectors()
        } else {
            vec![DetectorKind::Baseline, DetectorKind::SubBlock(4), DetectorKind::Perfect]
        };
        for d in ds {
            let out = Machine::run(w.as_ref(), cfg(d, 99));
            assert_eq!(
                out.stats.isolation_violations, 0,
                "{} under {d} violated isolation",
                w.name()
            );
        }
    }
}

#[test]
fn every_transaction_completes() {
    // started == committed + fallback-committed? Fallback commits are
    // counted inside tx_committed already via on_commit; check the stronger
    // invariant: every started transaction eventually commits exactly once.
    for w in asf_workloads::all(Scale::Small) {
        for d in [DetectorKind::Baseline, DetectorKind::SubBlock(4), DetectorKind::Perfect] {
            let out = Machine::run(w.as_ref(), cfg(d, 7));
            assert_eq!(
                out.stats.tx_started, out.stats.tx_committed,
                "{} under {d}: started != committed",
                w.name()
            );
            assert_eq!(
                out.stats.tx_attempts,
                out.stats.tx_committed - out.stats.fallback_commits + out.stats.tx_aborted,
                "{} under {d}: attempt accounting broken",
                w.name()
            );
        }
    }
}

#[test]
fn perfect_detector_reports_zero_false_conflicts() {
    for w in asf_workloads::all(Scale::Small) {
        let out = Machine::run(w.as_ref(), cfg(DetectorKind::Perfect, 11));
        assert_eq!(
            out.stats.conflicts.false_total(),
            0,
            "{} perfect system saw false conflicts",
            w.name()
        );
    }
}

#[test]
fn waw_share_is_negligible_at_baseline() {
    // The paper's Figure 2 observation that WAW false conflicts are ≈ 0%
    // must hold across the whole suite at line granularity.
    for w in asf_workloads::all(Scale::Small) {
        let out = Machine::run(w.as_ref(), cfg(DetectorKind::Baseline, 13));
        let waw = out.stats.conflicts.false_by_type[2];
        let total = out.stats.conflicts.false_total();
        assert!(
            waw * 20 <= total.max(1),
            "{}: WAW false share too large ({waw}/{total})",
            w.name()
        );
    }
}

#[test]
fn runs_are_bit_deterministic() {
    for w in asf_workloads::all(Scale::Small).into_iter().take(3) {
        let a = Machine::run(w.as_ref(), cfg(DetectorKind::SubBlock(4), 5));
        let b = Machine::run(w.as_ref(), cfg(DetectorKind::SubBlock(4), 5));
        assert_eq!(a.stats.cycles, b.stats.cycles, "{}", w.name());
        assert_eq!(a.stats.conflicts, b.stats.conflicts, "{}", w.name());
        assert_eq!(a.stats.tx_attempts, b.stats.tx_attempts, "{}", w.name());
        assert_eq!(a.stats.probes, b.stats.probes, "{}", w.name());
    }
}

#[test]
fn different_seeds_change_timings() {
    let w = asf_workloads::by_name("vacation", Scale::Small).unwrap();
    let a = Machine::run(w.as_ref(), cfg(DetectorKind::Baseline, 1));
    let b = Machine::run(w.as_ref(), cfg(DetectorKind::Baseline, 2));
    assert_ne!(a.stats.cycles, b.stats.cycles);
}
