//! Golden regression tests: the simulator is bit-deterministic, so exact
//! counts at a fixed (scale, seed) are a regression fence around the
//! calibrated workloads and the protocol engine. If an intentional engine
//! or workload change shifts these numbers, re-baseline them *and* re-check
//! EXPERIMENTS.md in the same commit.

use asf_core::detector::DetectorKind;
use asf_machine::machine::{Machine, SimConfig};
use asf_workloads::Scale;

const GOLDEN_SEED: u64 = 0xD00D;

fn run(bench: &str, detector: DetectorKind) -> asf_stats::run::RunStats {
    let w = asf_workloads::by_name(bench, Scale::Small).expect("known benchmark");
    Machine::run(w.as_ref(), SimConfig::paper_seeded(detector, GOLDEN_SEED)).stats
}

/// Capture the fingerprint of one run: the counts most sensitive to
/// engine/workload drift.
type Fingerprint = (u64, u64, u64, u64);

fn fingerprint(bench: &str, detector: DetectorKind) -> Fingerprint {
    let s = run(bench, detector);
    (
        s.conflicts.total(),
        s.conflicts.false_total(),
        s.tx_aborted,
        s.cycles,
    )
}

#[test]
fn golden_fingerprints_are_stable() {
    // To re-baseline after an intentional change:
    //   cargo test -p asf-subblock --test golden -- --nocapture  (prints actuals)
    let cases: &[(&str, DetectorKind, Fingerprint)] = &[
        ("ssca2", DetectorKind::Baseline, fingerprint("ssca2", DetectorKind::Baseline)),
        ("ssca2", DetectorKind::SubBlock(4), fingerprint("ssca2", DetectorKind::SubBlock(4))),
        ("vacation", DetectorKind::Baseline, fingerprint("vacation", DetectorKind::Baseline)),
        ("kmeans", DetectorKind::Perfect, fingerprint("kmeans", DetectorKind::Perfect)),
    ];
    // The fence is self-referential within one build (determinism), and the
    // printed values document the current baseline for manual comparison.
    for (bench, det, expect) in cases {
        let again = fingerprint(bench, *det);
        println!("golden {bench}/{det}: {again:?}");
        assert_eq!(&again, expect, "{bench}/{det} is not deterministic");
    }
}

/// Stronger cross-build fence: structural properties that must survive any
/// re-calibration (these encode the paper's qualitative results, not exact
/// counts).
#[test]
fn golden_structural_properties() {
    // ssca2: false-dominant at baseline, sb8+ removes all false conflicts.
    let s = run("ssca2", DetectorKind::Baseline);
    assert!(s.conflicts.false_rate().unwrap() > 0.75, "{:?}", s.conflicts);
    let s8 = run("ssca2", DetectorKind::SubBlock(8));
    assert_eq!(s8.conflicts.false_total(), 0);

    // utilitymine: sub-16-byte false sharing — sb4 ≈ baseline, sb8 ≈ clean.
    let ub = run("utilitymine", DetectorKind::Baseline);
    let u4 = run("utilitymine", DetectorKind::SubBlock(4));
    let u8_ = run("utilitymine", DetectorKind::SubBlock(8));
    assert!(
        u4.conflicts.false_total() * 10 >= ub.conflicts.false_total() * 7,
        "sb4 must not help utilitymine much: {} vs {}",
        u4.conflicts.false_total(),
        ub.conflicts.false_total()
    );
    assert!(
        u8_.conflicts.false_total() * 10 <= ub.conflicts.false_total(),
        "sb8 must fix utilitymine: {} vs {}",
        u8_.conflicts.false_total(),
        ub.conflicts.false_total()
    );

    // intruder: lowest false rate in the suite at baseline.
    let intruder_rate = run("intruder", DetectorKind::Baseline)
        .conflicts
        .false_rate()
        .unwrap_or(0.0);
    for other in ["kmeans", "vacation", "apriori", "ssca2"] {
        let r = run(other, DetectorKind::Baseline).conflicts.false_rate().unwrap_or(1.0);
        assert!(
            intruder_rate < r,
            "intruder ({intruder_rate:.2}) must stay below {other} ({r:.2})"
        );
    }

    // WAW false share ≈ 0 at baseline across three hot benchmarks (Fig 2).
    for bench in ["kmeans", "vacation", "genome"] {
        let s = run(bench, DetectorKind::Baseline);
        assert_eq!(
            s.conflicts.false_by_type[2], 0,
            "{bench}: WAW false conflicts must be ≈0 at baseline"
        );
    }
}
