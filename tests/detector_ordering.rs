//! Cross-detector structure: the granularity hierarchy observed on whole
//! runs, and the equivalences that pin the implementation to the paper's
//! design.

use asf_core::detector::DetectorKind;
use asf_machine::machine::{Machine, SimConfig};
use asf_machine::txprog::{ScriptedWorkload, TxAttempt, TxOp, WorkItem};
use asf_mem::addr::Addr;
use asf_mem::config::MachineConfig;
use asf_workloads::Scale;

fn tx(ops: Vec<TxOp>) -> WorkItem {
    WorkItem::Tx(TxAttempt::new(ops))
}

/// A deterministic reader/writer pattern with *no timing feedback*: one
/// writer touches its slot once, readers read disjoint slots once, at
/// scripted times. With a single conflict window, detector comparisons are
/// exact, not statistical.
fn one_shot(write_off: u64, read_off: u64) -> ScriptedWorkload {
    ScriptedWorkload {
        name: "one-shot",
        scripts: vec![
            vec![tx(vec![
                TxOp::Write { addr: Addr(0x9000 + write_off), size: 8, value: 1 },
                TxOp::WaitUntil { cycle: 3_000 },
            ])],
            vec![tx(vec![
                TxOp::WaitUntil { cycle: 1_000 },
                TxOp::Read { addr: Addr(0x9000 + read_off), size: 8 },
            ])],
        ],
    }
}

fn conflicts(w: &ScriptedWorkload, d: DetectorKind) -> u64 {
    let mut cfg = SimConfig::paper(d);
    cfg.machine = MachineConfig::opteron_with_cores(2);
    Machine::run(w, cfg).stats.conflicts.total()
}

#[test]
fn detection_threshold_follows_distance() {
    // Reader at byte 56, writer at byte 0: different 8/16/32-byte blocks.
    let far = one_shot(0, 56);
    assert_eq!(conflicts(&far, DetectorKind::Baseline), 1);
    assert_eq!(conflicts(&far, DetectorKind::SubBlock(2)), 0);
    assert_eq!(conflicts(&far, DetectorKind::Perfect), 0);

    // Reader at byte 24: same 32-byte half as the writer, different 16-byte
    // sub-block.
    let mid = one_shot(0, 24);
    assert_eq!(conflicts(&mid, DetectorKind::Baseline), 1);
    assert_eq!(conflicts(&mid, DetectorKind::SubBlock(2)), 1);
    assert_eq!(conflicts(&mid, DetectorKind::SubBlock(4)), 0);

    // Reader at byte 8: same 16-byte sub-block, different 8-byte block.
    let near = one_shot(0, 8);
    assert_eq!(conflicts(&near, DetectorKind::SubBlock(4)), 1);
    assert_eq!(conflicts(&near, DetectorKind::SubBlock(8)), 0);

    // Reader at byte 0: true conflict at every granularity.
    let hit = one_shot(0, 0);
    for d in DetectorKind::paper_set() {
        assert_eq!(conflicts(&hit, d), 1, "{d}");
    }
}

#[test]
fn false_conflicts_vanish_only_when_true_remain() {
    let near = one_shot(0, 8);
    let mut cfg = SimConfig::paper(DetectorKind::SubBlock(4));
    cfg.machine = MachineConfig::opteron_with_cores(2);
    let out = Machine::run(&near, cfg);
    assert_eq!(out.stats.conflicts.false_total(), 1);
    assert_eq!(out.stats.conflicts.true_total(), 0);
}

#[test]
fn suite_false_conflicts_shrink_with_granularity_on_average() {
    // Run-level dynamics are chaotic per benchmark, but the suite-average
    // ordering baseline ≥ sb4 ≥ sb16-ish must hold (Figure 8's monotone
    // average row).
    let mut base_sum = 0u64;
    let mut sb4_sum = 0u64;
    let mut sb16_sum = 0u64;
    for w in asf_workloads::all(Scale::Small) {
        base_sum += Machine::run(w.as_ref(), SimConfig::paper_seeded(DetectorKind::Baseline, 21))
            .stats
            .conflicts
            .false_total();
        sb4_sum += Machine::run(
            w.as_ref(),
            SimConfig::paper_seeded(DetectorKind::SubBlock(4), 21),
        )
        .stats
        .conflicts
        .false_total();
        sb16_sum += Machine::run(
            w.as_ref(),
            SimConfig::paper_seeded(DetectorKind::SubBlock(16), 21),
        )
        .stats
        .conflicts
        .false_total();
    }
    assert!(base_sum > sb4_sum, "baseline {base_sum} <= sb4 {sb4_sum}");
    assert!(sb4_sum > sb16_sum, "sb4 {sb4_sum} <= sb16 {sb16_sum}");
}

#[test]
fn subblock64_equals_perfect_when_no_concurrent_writes() {
    // With a single writer, the WAW-any rule never fires, so byte-granular
    // sub-blocking and the perfect oracle see identical conflicts.
    for (w_off, r_off) in [(0u64, 8u64), (0, 0), (16, 48)] {
        let w = one_shot(w_off, r_off);
        assert_eq!(
            conflicts(&w, DetectorKind::SubBlock(64)),
            conflicts(&w, DetectorKind::Perfect),
            "offsets {w_off}/{r_off}"
        );
    }
}

#[test]
fn waw_any_rule_is_the_only_subblock64_perfect_divergence() {
    // Two writers on disjoint halves: sub-block(64) aborts (hardware data
    // loss), perfect does not.
    let w = ScriptedWorkload {
        name: "waw-div",
        scripts: vec![
            vec![tx(vec![
                TxOp::Write { addr: Addr(0xa000), size: 8, value: 1 },
                TxOp::WaitUntil { cycle: 3_000 },
            ])],
            vec![tx(vec![
                TxOp::WaitUntil { cycle: 1_000 },
                TxOp::Write { addr: Addr(0xa020), size: 8, value: 2 },
            ])],
        ],
    };
    assert_eq!(conflicts(&w, DetectorKind::SubBlock(64)), 1);
    assert_eq!(conflicts(&w, DetectorKind::Perfect), 0);
}
