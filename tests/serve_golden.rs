//! Golden fence for the serve layer: a result served over HTTP must carry
//! a stats digest **bit-identical** to a direct `Machine::run` of the same
//! spec in this process — the serve path (job spec parsing, progress
//! probe, worker pool, cache round-trip, JSON render and re-parse) may add
//! zero observable perturbation to the simulation. Because the served run
//! always attaches a [`asf_machine::snapshot::ProgressProbe`], this is
//! simultaneously the probe-transparency fence.

use asf_core::detector::DetectorKind;
use asf_machine::machine::{Machine, SimConfig};
use asf_serve::http::Client;
use asf_serve::server::{ServeOpts, Server};
use asf_serve::spec::JobSpec;
use asf_stats::digest::run_stats_digest;
use asf_stats::run::RunStats;
use asf_workloads::Scale;

/// The fenced cell — same family as `tests/golden_stats.rs` pins.
const BENCH: &str = "ssca2";
const SEED: u64 = 0xA5;

/// Direct, serve-free reference run.
fn direct_digest() -> u64 {
    let workload = asf_workloads::by_name(BENCH, Scale::Small).expect("known bench");
    let cfg = SimConfig::paper_seeded(DetectorKind::SubBlock(4), SEED);
    let out = Machine::new(workload.as_ref(), cfg).run_to_completion();
    run_stats_digest(&out.stats)
}

#[test]
fn served_stats_digest_matches_direct_machine_run() {
    let reference = direct_digest();

    let server = Server::start(ServeOpts::default()).expect("start server");
    let mut client = Client::connect(&server.addr()).expect("connect");
    let spec = JobSpec::new(BENCH, DetectorKind::SubBlock(4), Scale::Small, SEED);
    let submit = client.post("/v1/jobs", &spec.canonical()).expect("submit");
    assert_eq!(submit.status, 200, "{}", submit.text());

    // Poll the result to completion.
    let path = format!("/v1/jobs/{}/result", spec.digest_hex());
    let body = loop {
        let resp = client.get(&path).expect("poll result");
        match resp.status {
            200 => break resp.text(),
            202 => std::thread::sleep(std::time::Duration::from_millis(2)),
            status => panic!("result status {status}: {}", resp.text()),
        }
    };
    server.shutdown();

    let root = asf_stats::json::parse(&body).expect("served body parses");
    assert_eq!(
        root.field("schema").unwrap().as_str().unwrap(),
        "asf-serve-v1"
    );
    // The digest the server stamped…
    let stamped = u64::from_str_radix(
        root.field("stats_digest").unwrap().as_str().unwrap(),
        16,
    )
    .expect("hex digest");
    // …the digest of the stats actually embedded in the body…
    let stats = RunStats::from_value(root.field("stats").unwrap())
        .expect("embedded stats parse");
    let embedded = run_stats_digest(&stats);
    // …and the direct-run reference must all be one number.
    assert_eq!(stamped, embedded, "server stamped a digest it did not serve");
    assert_eq!(
        stamped, reference,
        "served result diverged from a direct Machine::run of the same spec \
         (the serve path must be bit-transparent)"
    );
}
