//! The observability layer's core contract: switching on metrics,
//! profiling, and the streaming timeline sink is *bit-transparent* — every
//! digest-pinned statistic is identical to an unobserved run (the same
//! guarantee `FaultPlan::none()` gives for the fault layer, but for the
//! enabled state, which is stronger). Also pins that the artifacts an
//! observed run produces are actually populated and mutually consistent.

use asf_core::detector::DetectorKind;
use asf_machine::machine::{Machine, SimConfig, SimOutput};
use asf_machine::obs::ObsConfig;
use asf_machine::trace::ChromeTraceSink;
use asf_workloads::Scale;

fn observed_run(bench: &str, seed: u64) -> SimOutput {
    let w = asf_workloads::by_name(bench, Scale::Small).expect("known benchmark");
    let mut m = Machine::new(w.as_ref(), SimConfig::paper_seeded(DetectorKind::SubBlock(4), seed));
    m.enable_observability(ObsConfig::default());
    m.enable_trace(4096);
    m.set_trace_sink(Box::new(ChromeTraceSink::new()));
    m.run_to_completion()
}

#[test]
fn observability_is_bit_transparent() {
    // Stronger than the golden digests: full structural equality of
    // RunStats between a plain run and a run with every observability
    // feature enabled (registry + interval gauges + wall-time profiling +
    // ring trace + streaming Chrome sink), across several benchmarks.
    for bench in ["ssca2", "vacation", "intruder"] {
        let w = asf_workloads::by_name(bench, Scale::Small).unwrap();
        let clean = Machine::run(w.as_ref(), SimConfig::paper_seeded(DetectorKind::SubBlock(4), 5));
        let observed = observed_run(bench, 5);
        assert_eq!(
            clean.stats, observed.stats,
            "{bench}: enabling observability changed the run"
        );
        assert_eq!(clean.promoted_lines, observed.promoted_lines);
    }
}

#[test]
fn observed_runs_produce_populated_reports() {
    let out = observed_run("ssca2", 5);
    let report = out.obs.expect("observability was enabled");
    // The registry agrees with the digest-pinned stats wherever both count
    // the same event — the transparency contract seen from the other side.
    let get = |name: &str| report.registry.get_by_name(name).unwrap_or_else(|| panic!("{name}"));
    assert_eq!(get("tx.commits"), out.stats.tx_committed);
    assert_eq!(get("conflict.detected"), out.stats.conflicts.total());
    assert_eq!(get("conflict.false"), out.stats.conflicts.false_total());
    assert_eq!(get("probe.walks"), out.stats.probes);
    assert_eq!(
        get("abort.conflict_true") + get("abort.conflict_false"),
        out.stats.conflicts.total() - out.stats.war_speculations,
        "every detected conflict aborts its victim (minus speculated WARs)"
    );
    assert!(get("sched.pops") > 0);
    assert!(get("teardown.walks") > 0);
    // Profiling was on: every phase that ran recorded samples.
    let sched_count = report
        .phases
        .phases()
        .find(|(name, ..)| *name == "scheduler-step")
        .map(|(_, count, ..)| count)
        .expect("scheduler phase registered");
    assert_eq!(sched_count, get("sched.pops"), "one sample per scheduler pop");
}

#[test]
fn plain_runs_carry_no_report() {
    let w = asf_workloads::by_name("ssca2", Scale::Small).unwrap();
    let out = Machine::run(w.as_ref(), SimConfig::paper_seeded(DetectorKind::SubBlock(4), 5));
    assert!(out.obs.is_none(), "no observability enabled, no report");
}

#[test]
fn interval_gauges_span_the_run() {
    let out = observed_run("ssca2", 5);
    let report = out.obs.expect("enabled");
    for (name, width, buckets) in report.registry.intervals() {
        assert_eq!(width, ObsConfig::default().interval_cycles, "{name}");
        let events: u64 = buckets.iter().sum();
        let last_window = (buckets.len() as u64).saturating_mul(width);
        assert!(
            last_window <= out.stats.cycles + width,
            "{name}: buckets extend past the run ({last_window} vs {} cycles)",
            out.stats.cycles
        );
        if name == "conflicts.per_interval" {
            assert_eq!(events, out.stats.conflicts.total());
        }
    }
}
