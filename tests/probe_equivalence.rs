//! The batched same-cycle probe pass (DESIGN.md §14) must be
//! outcome-equivalent to the reference one-victim-at-a-time resolution:
//! computing every victim's verdict in a single pass over the spec-state
//! directory row — one bitmask join per line — before applying any of them
//! may not change a single statistic versus snapshotting the victim list
//! and re-resolving each victim independently.
//!
//! `sequential_probe_resolution` forces the reference path; the default is
//! the batched pass. The golden A/B cells in `tests/golden_stats.rs` pin
//! two fixed configurations to identical digests in both modes; this file
//! sweeps randomized workloads across seeds, detectors, fabrics and
//! signature mode, asserting full `RunStats` equality every time.

use asf_core::detector::DetectorKind;
use asf_machine::machine::{FabricKind, Machine, SimConfig, SignatureConfig};
use asf_machine::txprog::{ScriptedWorkload, TxAttempt, TxOp, WorkItem};
use asf_mem::addr::Addr;
use asf_mem::rng::SimRng;

/// Hot shared slots (heavy false sharing, multi-victim probes) mixed with
/// thread-private regions (zero-victim probes), the same shape the fabric
/// and residency equivalence suites use.
fn randomized_workload(seed: u64, threads: usize) -> ScriptedWorkload {
    const SHARED_BASE: u64 = 0x4_0000;
    const SHARED_SLOTS: u64 = 24;
    const PRIVATE_BASE: u64 = 0x8_0000;
    let mut scripts = Vec::new();
    for tid in 0..threads {
        let mut rng = SimRng::derive(seed, tid as u64);
        let mut items = Vec::new();
        for _ in 0..rng.range(8, 16) {
            let mut ops = Vec::new();
            for _ in 0..rng.range(2, 9) {
                let addr = if rng.chance(1, 2) {
                    Addr(SHARED_BASE + rng.below(SHARED_SLOTS) * 8)
                } else {
                    Addr(PRIVATE_BASE + ((tid as u64) << 12) + rng.below(32) * 8)
                };
                if rng.chance(1, 3) {
                    ops.push(TxOp::Update { addr, size: 8, delta: 1 });
                } else {
                    ops.push(TxOp::Read { addr, size: 8 });
                }
            }
            items.push(WorkItem::Tx(TxAttempt::new(ops)));
            if rng.chance(1, 4) {
                items.push(WorkItem::Compute { cycles: rng.range(10, 200) });
            }
        }
        scripts.push(items);
    }
    ScriptedWorkload { name: "randomized", scripts }
}

fn run(seed: u64, cfg_mut: impl Fn(&mut SimConfig)) -> asf_stats::run::RunStats {
    let w = randomized_workload(seed, 6);
    let mut cfg = SimConfig::paper_seeded(DetectorKind::SubBlock(4), seed ^ 0xBA7C);
    cfg_mut(&mut cfg);
    Machine::run(&w, cfg).stats
}

/// The tentpole equivalence: batching every same-cycle verdict into one
/// directory pass changes *nothing* observable versus the sequential
/// reference, across all three detector granularities and several seeds.
#[test]
fn batched_probe_pass_equals_sequential_across_detectors_and_seeds() {
    for detector in [DetectorKind::Baseline, DetectorKind::SubBlock(8), DetectorKind::Perfect] {
        for seed in [0xA5EED_u64, 0xB5EED, 0xC5EED] {
            let batched = run(seed, |c| c.detector = detector);
            let sequential = run(seed, |c| {
                c.detector = detector;
                c.sequential_probe_resolution = true;
            });
            assert_eq!(
                batched, sequential,
                "{detector:?}/seed {seed:#x}: batched probe pass changed results"
            );
        }
    }
}

/// The equivalence holds composed with the other probe-path modes: the
/// probe-filter fabric, signature (LogTM-SE) conflict detection, and the
/// exhaustive spec-directory A/B walk.
#[test]
fn batched_probe_pass_equals_sequential_composed_with_probe_modes() {
    type Mode = (&'static str, fn(&mut SimConfig));
    let cases: [Mode; 3] = [
        ("probe-filter", |c| c.fabric = FabricKind::ProbeFilter),
        ("signatures", |c| c.signatures = Some(SignatureConfig::logtm_se())),
        ("exhaustive-walk", |c| c.exhaustive_spec_walk = true),
    ];
    for (label, set) in cases {
        let batched = run(0xD5EED, set);
        let sequential = run(0xD5EED, |c| {
            set(c);
            c.sequential_probe_resolution = true;
        });
        assert_eq!(batched, sequential, "{label}: batched probe pass changed results");
    }
}
