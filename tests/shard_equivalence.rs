//! Shard-parallel equivalence fence (DESIGN.md §15).
//!
//! The shard engine's whole claim is that OS worker threads are *invisible*
//! to the simulation: for any shard topology, detector, and seed, running
//! the shards on N threads produces the exact `RunStats` of running them on
//! one — and a single-shard engine produces the exact `RunStats` of a plain
//! [`Machine`]. This suite sweeps those claims across detectors × seeds ×
//! shard counts on a streaming workload (whose generation is a pure
//! function of the global core id, never the thread count), and pins the
//! watchdog scaling: a 256-core idle-heavy run must not trip a spurious
//! `Livelock` just because commits per-core are sparse at system scale.

use asf_core::detector::DetectorKind;
use asf_machine::hier::DirLatency;
use asf_machine::machine::{Machine, SimConfig};
use asf_machine::shard::{ShardConfig, ShardEngine, ShardOutput};
use asf_workloads::streaming::{StreamSpec, StreamWorkload};

/// A quick streaming mix: every pool class exercised (private, cluster,
/// global) so cross-shard routing actually fires, but small enough for a
/// debug-build sweep.
fn quick_spec() -> StreamSpec {
    StreamSpec { txns_per_core: 12, ..StreamSpec::smoke() }
}

fn run_sharded(
    w: &StreamWorkload,
    det: DetectorKind,
    seed: u64,
    total: usize,
    per_cluster: usize,
    threads: usize,
) -> ShardOutput {
    let base = SimConfig::paper_seeded(det, seed);
    ShardEngine::new(
        w,
        base,
        ShardConfig {
            total_cores: total,
            cores_per_cluster: per_cluster,
            epoch_cycles: 1024,
            worker_threads: threads,
            dir_latency: DirLatency::opteron_like(),
        },
    )
    .try_run()
    .expect("sharded run completes")
}

#[test]
fn worker_threads_invisible_across_detectors_seeds_and_shard_counts() {
    let w = StreamWorkload::new("smoke", quick_spec());
    let total = 16;
    for det in [DetectorKind::Baseline, DetectorKind::SubBlock(4), DetectorKind::Perfect] {
        for seed in [1u64, 0xBEEF] {
            for shards in [1usize, 2, 4, 8] {
                let per_cluster = total / shards;
                let seq = run_sharded(&w, det, seed, total, per_cluster, 1);
                let par = run_sharded(&w, det, seed, total, per_cluster, 3);
                assert_eq!(
                    seq.stats, par.stats,
                    "{det:?}/seed {seed:#x}/{shards} shard(s): \
                     3 worker threads diverged from 1"
                );
                assert_eq!(
                    seq.per_shard_cycles, par.per_shard_cycles,
                    "{det:?}/seed {seed:#x}/{shards} shard(s): per-shard clocks diverged"
                );
                assert_eq!(
                    (seq.scale.epochs, seq.scale.cross_probes, seq.scale.cross_aborts),
                    (par.scale.epochs, par.scale.cross_probes, par.scale.cross_aborts),
                    "{det:?}/seed {seed:#x}/{shards} shard(s): cross-shard counters diverged"
                );
                assert!(seq.stats.tx_committed > 0, "the sweep must do real work");
            }
        }
    }
}

#[test]
fn single_shard_engine_equals_plain_machine() {
    let w = StreamWorkload::new("smoke", quick_spec());
    for det in [DetectorKind::Baseline, DetectorKind::SubBlock(8)] {
        for seed in [7u64, 0xCAFE] {
            let mut plain_cfg = SimConfig::paper_seeded(det, seed);
            plain_cfg.machine.cores = 16;
            let plain = Machine::try_run(&w, plain_cfg).expect("plain run");
            let sharded = run_sharded(&w, det, seed, 16, 16, 1);
            assert_eq!(
                plain.stats, sharded.stats,
                "{det:?}/seed {seed:#x}: one 16-core shard must equal a plain \
                 16-core machine (epoch pausing is behaviour-neutral)"
            );
            assert_eq!(sharded.scale.cross_probes, 0, "one cluster routes nothing");
        }
    }
}

/// Watchdog scaling regression (the satellite fix): at 256 simulated cores
/// an idle-heavy mix leaves each core committing rarely and aborting in
/// long per-core droughts. With the 8-core thresholds this tripped spurious
/// `Livelock`/`Starvation` reports; `ProgressMonitor::with_system_cores`
/// now scales the abort-streak threshold and commit-age window with the
/// *system* core count, so the run must complete.
#[test]
fn huge_idle_heavy_run_does_not_trip_the_watchdog() {
    let spec = StreamSpec { txns_per_core: 24, ..StreamSpec::idle_heavy() };
    let w = StreamWorkload::new("idle_heavy", spec);
    let out = run_sharded(&w, DetectorKind::SubBlock(8), 0x1D7E, 256, 16, 2);
    assert!(out.stats.tx_committed > 0);
    assert!(out.scale.epochs > 0);
    // 16 clusters all ran to their own completion.
    assert_eq!(out.per_shard_cycles.len(), 16);
    assert!(out.per_shard_cycles.iter().all(|&c| c > 0));
}
