//! The Figure 6 correctness property, end to end: the dirty-state
//! mechanism is what keeps sub-block conflict detection *sound*. With it
//! off, the exact interleavings of the paper's Figure 6 slip a conflict
//! past the detector (counted by the isolation oracle).

use asf_core::detector::DetectorKind;
use asf_machine::machine::{Machine, SimConfig};
use asf_machine::txprog::{ScriptedWorkload, TxAttempt, TxOp, WorkItem};
use asf_mem::addr::Addr;
use asf_mem::config::MachineConfig;

fn two_core_cfg(detector: DetectorKind, enable_dirty: bool) -> SimConfig {
    let mut c = SimConfig::paper(detector);
    c.machine = MachineConfig::opteron_with_cores(2);
    c.enable_dirty = enable_dirty;
    c
}

fn tx(ops: Vec<TxOp>) -> WorkItem {
    WorkItem::Tx(TxAttempt::new(ops))
}

/// Figure 6(a): T1 reads a non-conflicting sub-block of T0's written line,
/// then reads the written bytes while T0 is still running. The first read
/// lands `probe_off` bytes into the line — callers pick an offset outside
/// the writer's sub-block at the granularity under test.
fn fig6a_at(probe_off: u64) -> ScriptedWorkload {
    ScriptedWorkload {
        name: "fig6a",
        scripts: vec![
            vec![tx(vec![
                TxOp::Write { addr: Addr(0x5000), size: 8, value: 7 },
                TxOp::WaitUntil { cycle: 6_000 },
            ])],
            vec![tx(vec![
                TxOp::WaitUntil { cycle: 1_000 },
                TxOp::Read { addr: Addr(0x5000 + probe_off), size: 8 },
                TxOp::WaitUntil { cycle: 2_500 },
                TxOp::Read { addr: Addr(0x5000), size: 8 },
            ])],
        ],
    }
}

/// The default variant used by the baseline/perfect tests (16-byte offset,
/// i.e. outside a 4-sub-block writer block).
fn fig6a() -> ScriptedWorkload {
    fig6a_at(16)
}

/// First-read offset that avoids the writer's sub-block at granularity `n`.
fn clean_offset(n: usize) -> u64 {
    (64 / n as u64).max(8)
}

/// Figure 6(b): same sharing, but T0 aborts (user abort) before T1's second
/// read; the dirty hit must refetch from the coherent state, not trust the
/// stale line.
fn fig6b() -> ScriptedWorkload {
    ScriptedWorkload {
        name: "fig6b",
        scripts: vec![
            vec![tx(vec![
                TxOp::Write { addr: Addr(0x6000), size: 8, value: 9 },
                TxOp::WaitUntil { cycle: 2_000 },
                TxOp::UserAbort { num: 1, den: 1 },
            ])],
            vec![tx(vec![
                TxOp::WaitUntil { cycle: 1_000 },
                TxOp::Read { addr: Addr(0x6010), size: 8 },
                TxOp::WaitUntil { cycle: 4_000 },
                TxOp::Read { addr: Addr(0x6000), size: 8 },
            ])],
        ],
    }
}

#[test]
fn fig6a_dirty_mechanism_detects_the_raw_conflict() {
    for n in [2usize, 4, 8] {
        let w = fig6a_at(clean_offset(n));
        let out = Machine::run(&w, two_core_cfg(DetectorKind::SubBlock(n), true));
        assert_eq!(out.stats.isolation_violations, 0, "sb{n}");
        assert!(out.stats.dirty_refetches >= 1, "sb{n}: no dirty refetch");
        assert!(out.stats.conflicts.true_total() >= 1, "sb{n}: conflict missed");
    }
}

#[test]
fn fig6a_without_dirty_is_unsound() {
    for n in [2usize, 4, 8] {
        let w = fig6a_at(clean_offset(n));
        let out = Machine::run(&w, two_core_cfg(DetectorKind::SubBlock(n), false));
        assert!(
            out.stats.isolation_violations >= 1,
            "sb{n}: expected a missed conflict with dirty off"
        );
    }
}

#[test]
fn fig6a_baseline_needs_no_dirty_mechanism() {
    // At line granularity T1's first read already conflicts: the dirty
    // mechanism never engages, and soundness holds even with it disabled.
    for enable in [true, false] {
        let out = Machine::run(&fig6a(), two_core_cfg(DetectorKind::Baseline, enable));
        assert_eq!(out.stats.isolation_violations, 0, "dirty={enable}");
        assert!(out.stats.conflicts.total() >= 1);
        assert_eq!(out.stats.dirty_refetches, 0, "dirty={enable}");
    }
}

#[test]
fn fig6b_abort_then_read_recovers_cleanly() {
    let mut cfg = two_core_cfg(DetectorKind::SubBlock(4), true);
    cfg.max_retries = 1; // T0 aborts forever; let it fall back quickly
    let out = Machine::run(&fig6b(), cfg);
    assert_eq!(out.stats.isolation_violations, 0);
    assert!(out.stats.aborts_by_cause[3] >= 1, "user abort recorded");
    // Both transactions complete (T0 via the lock fallback).
    assert_eq!(out.stats.tx_committed, 2);
    // The fallback executed T0's write non-transactionally.
    assert_eq!(out.memory.read_u64(Addr(0x6000), 8), 9);
}

#[test]
fn perfect_mode_also_relies_on_dirty_for_soundness() {
    // Byte-granularity detection has the same local-hit blind spot; the
    // dirty mechanism (at byte granularity) covers it.
    let out = Machine::run(&fig6a(), two_core_cfg(DetectorKind::Perfect, true));
    assert_eq!(out.stats.isolation_violations, 0);
    let out = Machine::run(&fig6a(), two_core_cfg(DetectorKind::Perfect, false));
    assert!(out.stats.isolation_violations >= 1);
}
