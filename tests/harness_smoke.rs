//! End-to-end smoke of the experiment pipeline at small scale: every table
//! and figure generator produces a well-formed table.

use asf_core::detector::DetectorKind;
use asf_harness::experiments;
use asf_harness::matrix::Matrix;
use asf_workloads::Scale;

fn small_matrix() -> Matrix {
    Matrix::paper_grid(Scale::Small, 0xfeed)
}

#[test]
fn all_experiments_render() {
    let m = small_matrix();
    let all = experiments::all_experiments(&m);
    assert_eq!(all.len(), 15, "three tables, ten figures, overhead, headline");
    for (name, table) in &all {
        let text = table.render();
        assert!(!text.is_empty(), "{name} rendered empty");
        assert!(!table.is_empty() || *name == "fig3", "{name} has no rows");
        let csv = table.to_csv();
        assert!(csv.lines().count() >= 2, "{name} csv too short");
    }
}

#[test]
fn fig1_covers_all_benchmarks_plus_average() {
    let m = small_matrix();
    let t = experiments::fig1(&m);
    assert_eq!(t.len(), 11);
    assert_eq!(t.rows().last().unwrap()[0], "average");
}

#[test]
fn fig8_reductions_are_rates() {
    let m = small_matrix();
    let t = experiments::fig8(&m);
    for row in t.rows() {
        for cell in &row[1..] {
            if cell != "n/a" {
                let v: f64 = cell.trim_end_matches('%').parse().unwrap();
                assert!((-100.0..=100.0).contains(&v), "{cell}");
            }
        }
    }
}

#[test]
fn fig10_has_sb4_and_perfect_columns() {
    let m = small_matrix();
    let t = experiments::fig10(&m);
    assert_eq!(t.header(), &["benchmark", "sb4", "perfect"]);
    assert_eq!(t.len(), 11);
}

#[test]
fn matrix_lookup_is_complete_for_the_paper_set() {
    let m = small_matrix();
    for b in m.benches() {
        for d in DetectorKind::paper_set() {
            assert!(m.contains(&b, d), "missing ({b}, {d})");
        }
    }
    assert_eq!(m.len(), 60);
}

#[test]
fn headline_row_shape() {
    let m = small_matrix();
    let t = experiments::headline(&m);
    assert_eq!(t.len(), 2);
    assert_eq!(t.rows()[0][1], "56.4%");
    assert_eq!(t.rows()[1][1], "31.3%");
}
