//! Soak tests at `Scale::Large` — ignored by default (`cargo test --
//! --ignored` runs them): the full suite at 4× standard input size must
//! stay sound, deterministic, and watchdog-free.

use asf_core::detector::DetectorKind;
use asf_machine::machine::{Machine, SimConfig};
use asf_workloads::Scale;

#[test]
#[ignore = "slow: Scale::Large across the suite (~1 min in release)"]
fn large_scale_suite_is_sound() {
    for w in asf_workloads::all(Scale::Large) {
        for d in [DetectorKind::Baseline, DetectorKind::SubBlock(4), DetectorKind::Perfect] {
            let out = Machine::run(w.as_ref(), SimConfig::paper_seeded(d, 77));
            assert_eq!(out.stats.isolation_violations, 0, "{} {d}", w.name());
            assert_eq!(out.stats.tx_started, out.stats.tx_committed, "{} {d}", w.name());
            assert!(out.stats.cycles > 0);
        }
    }
}

#[test]
#[ignore = "slow: determinism at Scale::Large"]
fn large_scale_runs_are_deterministic() {
    let w = asf_workloads::by_name("apriori", Scale::Large).unwrap();
    let a = Machine::run(w.as_ref(), SimConfig::paper_seeded(DetectorKind::SubBlock(4), 5));
    let b = Machine::run(w.as_ref(), SimConfig::paper_seeded(DetectorKind::SubBlock(4), 5));
    assert_eq!(a.stats.cycles, b.stats.cycles);
    assert_eq!(a.stats.conflicts, b.stats.conflicts);
}
