//! # asf-repro — workspace façade
//!
//! Umbrella crate re-exporting the public API of the reproduction of
//! *"Reducing False Transactional Conflicts With Speculative Sub-blocking
//! State"* (Nai & Lee, IPDPSW 2013). Depend on this crate to get everything;
//! the examples in `examples/` and the integration tests in `tests/` are the
//! best starting points.
//!
//! Layering (bottom → top):
//!
//! 1. [`mem`] — memory-hierarchy substrate (addresses, masks, caches, MOESI,
//!    latencies, deterministic RNG);
//! 2. [`core`] — the paper's contribution: speculative per-sub-block state
//!    and the three conflict-detection granularities;
//! 3. [`stats`] — conflict classification and measurement;
//! 4. [`machine`] — the event-driven multicore HTM simulator;
//! 5. [`workloads`] — STAMP/RMS-TM-style transactional kernels;
//! 6. [`harness`] — experiment definitions regenerating each paper figure.

pub use asf_core as core;
pub use asf_harness as harness;
pub use asf_machine as machine;
pub use asf_mem as mem;
pub use asf_stats as stats;
pub use asf_workloads as workloads;

/// One-line import for the common case:
///
/// ```
/// use asf_subblock::prelude::*;
///
/// let w = asf_subblock::workloads::by_name("ssca2", Scale::Small).unwrap();
/// let out = Machine::run(&*w, SimConfig::paper(DetectorKind::SubBlock(4)));
/// assert_eq!(out.stats.isolation_violations, 0);
/// ```
pub mod prelude {
    pub use asf_core::detector::{ConflictType, DetectorKind, ProbeKind};
    pub use asf_machine::machine::{
        AdaptiveConfig, FabricKind, Machine, ResolutionPolicy, SimConfig, SignatureConfig,
        SimOutput,
    };
    pub use asf_machine::txprog::{
        ScriptedWorkload, ThreadProgram, TxAttempt, TxBuilder, TxOp, WorkItem, Workload,
    };
    pub use asf_mem::addr::Addr;
    pub use asf_mem::config::MachineConfig;
    pub use asf_stats::run::RunStats;
    pub use asf_workloads::Scale;
}
