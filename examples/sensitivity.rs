//! Sensitivity study (a miniature of the paper's Figure 8): sweep the
//! sub-block count for every benchmark and print the false-conflict
//! reduction each configuration achieves, plus the hardware cost.
//!
//! ```text
//! cargo run --release --example sensitivity
//! ```

use asf_core::detector::DetectorKind;
use asf_core::overhead::overhead;
use asf_machine::machine::{Machine, SimConfig};
use asf_mem::config::MachineConfig;
use asf_workloads::Scale;

fn main() {
    let configs = [
        DetectorKind::SubBlock(2),
        DetectorKind::SubBlock(4),
        DetectorKind::SubBlock(8),
        DetectorKind::SubBlock(16),
    ];

    println!(
        "{:>12} | {:>8} {:>8} {:>8} {:>8}",
        "benchmark", "sb2", "sb4", "sb8", "sb16"
    );
    for w in asf_workloads::all(Scale::Standard) {
        let base = Machine::run(w.as_ref(), SimConfig::paper(DetectorKind::Baseline));
        let mut row = format!("{:>12} |", w.name());
        for &k in &configs {
            let out = Machine::run(w.as_ref(), SimConfig::paper(k));
            let red = out
                .stats
                .conflicts
                .false_reduction_vs(&base.stats.conflicts)
                .map(|r| format!("{:.0}%", r * 100.0))
                .unwrap_or_else(|| "n/a".into());
            row.push_str(&format!(" {red:>8}"));
        }
        println!("{row}");
    }

    let l1 = MachineConfig::opteron_8core().l1;
    println!("\nhardware cost (extra state, % of 64 KB L1):");
    for &k in &configs {
        let o = overhead(k, l1);
        println!(
            "  {:>4}: {:>2} bits/line extra = {:>5} bytes ({:.2}%)",
            k.label(),
            o.extra_bits_per_line,
            o.extra_bytes,
            o.fraction_of_l1 * 100.0
        );
    }
    println!(
        "\nThe paper picks 4 sub-blocks: most of the reduction at 1.17% of L1 capacity."
    );
}
