//! A narrated run of the paper's Figure 6/7 dirty-state machinery: why
//! sub-block conflict detection needs the extra Dirty state, and what goes
//! wrong without it.
//!
//! ```text
//! cargo run --release --example dirty_state_walkthrough
//! ```

use asf_core::detector::DetectorKind;
use asf_core::spec::SpecState;
use asf_core::subblock::SubBlockState;
use asf_machine::machine::{Machine, SimConfig};
use asf_machine::txprog::{ScriptedWorkload, TxAttempt, TxOp, WorkItem};
use asf_mem::addr::Addr;
use asf_mem::config::MachineConfig;
use asf_mem::mask::AccessMask;

fn scenario() -> ScriptedWorkload {
    ScriptedWorkload {
        name: "figure6",
        scripts: vec![
            // T0: speculatively writes sub-block 0 of line 0x3000 and keeps
            // running.
            vec![WorkItem::Tx(TxAttempt::new(vec![
                TxOp::Write { addr: Addr(0x3000), size: 8, value: 0xAA },
                TxOp::WaitUntil { cycle: 5_000 },
            ]))],
            // T1: reads sub-block 1 (no true conflict — this is false
            // sharing the technique must NOT abort on), then reads the very
            // bytes T0 wrote (a true RAW conflict that MUST be caught).
            vec![WorkItem::Tx(TxAttempt::new(vec![
                TxOp::WaitUntil { cycle: 1_000 },
                TxOp::Read { addr: Addr(0x3010), size: 8 },
                TxOp::WaitUntil { cycle: 2_000 },
                TxOp::Read { addr: Addr(0x3000), size: 8 },
            ]))],
        ],
    }
}

fn main() {
    println!("Figure 6(a) of the paper, on the simulator.\n");
    println!("The line as T1 sees it after its first (surviving) read —");
    println!("the responder piggy-backed its written sub-blocks, marked Dirty:");
    let mut t1_view = SpecState::EMPTY;
    t1_view.mark_dirty(AccessMask::from_range(0, 16)); // sub-block 0 (piggy-back)
    t1_view.mark_read(AccessMask::from_range(16, 8)); // its own read
    println!(
        "    sub-blocks: {}   (W=S-WR, R=S-RD, D=Dirty, .=non-spec)\n",
        SubBlockState::render_line(&t1_view, 4)
    );

    for enable_dirty in [true, false] {
        let mut cfg = SimConfig::paper(DetectorKind::SubBlock(4));
        cfg.machine = MachineConfig::opteron_with_cores(2);
        cfg.enable_dirty = enable_dirty;
        let out = Machine::run(&scenario(), cfg);
        println!(
            "dirty mechanism {}:",
            if enable_dirty { "ON  (the paper's design)" } else { "OFF (ablation)" }
        );
        println!(
            "    dirty refetches: {:>2}   conflicts caught: {:>2}   isolation violations: {:>2}",
            out.stats.dirty_refetches,
            out.stats.conflicts.total(),
            out.stats.isolation_violations,
        );
        if enable_dirty {
            println!(
                "    → T1's second read hit a Dirty sub-block, was treated as a miss,\n\
                 \u{20}     and the probe aborted T0: atomicity preserved.\n"
            );
        } else {
            println!(
                "    → T1's second read hit its own (stale) cache line without any\n\
                 \u{20}     coherence message: the RAW conflict was silently missed.\n"
            );
        }
    }
}
