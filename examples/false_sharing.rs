//! The false-sharing archetype, step by step: a reader and a writer touch
//! disjoint bytes of one cache line, and we watch what each detector does.
//!
//! ```text
//! cargo run --release --example false_sharing
//! ```

use asf_core::detector::DetectorKind;
use asf_machine::machine::{Machine, SimConfig};
use asf_machine::txprog::{ScriptedWorkload, TxAttempt, TxOp, WorkItem};
use asf_mem::addr::Addr;
use asf_mem::config::MachineConfig;

fn scenario(read_offset: u64) -> ScriptedWorkload {
    // Core 0 speculatively reads 8 bytes at `read_offset` of line 0x1000;
    // core 1 writes bytes 0..8 of the same line while core 0 is running.
    ScriptedWorkload {
        name: "false-sharing",
        scripts: vec![
            vec![WorkItem::Tx(TxAttempt::new(vec![
                TxOp::Read { addr: Addr(0x1000 + read_offset), size: 8 },
                TxOp::WaitUntil { cycle: 3_000 },
            ]))],
            vec![WorkItem::Tx(TxAttempt::new(vec![
                TxOp::WaitUntil { cycle: 1_000 },
                TxOp::Write { addr: Addr(0x1000), size: 8, value: 42 },
            ]))],
        ],
    }
}

fn main() {
    println!("writer at bytes 0..8; reader at varying offsets of the same 64-byte line\n");
    println!(
        "{:>14} | {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "reader offset", "baseline", "sb2", "sb4", "sb8", "sb16", "perfect"
    );
    for read_offset in [0u64, 8, 16, 32, 56] {
        let mut row = format!("{read_offset:>14} |");
        for detector in DetectorKind::paper_set() {
            let mut cfg = SimConfig::paper(detector);
            cfg.machine = MachineConfig::opteron_with_cores(2);
            let out = Machine::run(&scenario(read_offset), cfg);
            let cell = match out.stats.conflicts.total() {
                0 => "ok".to_string(),
                _ if out.stats.conflicts.false_total() > 0 => "FALSE".to_string(),
                _ => "true".to_string(),
            };
            row.push_str(&format!(" {cell:>8}"));
        }
        println!("{row}");
    }
    println!(
        "\n`FALSE` = the transactions aborted although their byte ranges never overlap; \
         \n`true`  = a genuine conflict (offset 0 overlaps the write) that every system must catch."
    );
}
