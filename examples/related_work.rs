//! The four conflict-detection architectures side by side on one workload:
//! baseline ASF, the paper's sub-blocking, DPTM-style WAR speculation, and
//! LogTM-SE-style Bloom signatures — each attacking a different
//! false-conflict source.
//!
//! ```text
//! cargo run --release --example related_work
//! ```

use asf_core::detector::DetectorKind;
use asf_machine::machine::{Machine, SimConfig, SignatureConfig};
use asf_workloads::Scale;

fn main() {
    let bench = "vacation";
    let w = asf_workloads::by_name(bench, Scale::Standard).unwrap();

    let base = Machine::run(&*w, SimConfig::paper(DetectorKind::Baseline));
    let sb4 = Machine::run(&*w, SimConfig::paper(DetectorKind::SubBlock(4)));
    let dptm = {
        let mut c = SimConfig::paper(DetectorKind::Baseline);
        c.war_speculation = true;
        Machine::run(&*w, c)
    };
    let sig = {
        let mut c = SimConfig::paper(DetectorKind::Baseline);
        c.signatures = Some(SignatureConfig::logtm_se());
        Machine::run(&*w, c)
    };

    println!("`{bench}` under four conflict-detection architectures:\n");
    println!(
        "{:>24} | {:>8} {:>7} {:>7} {:>10} {:>10}",
        "architecture", "cycles", "aborts", "false", "time gain", "mechanism"
    );
    let gain = |out: &asf_machine::machine::SimOutput| {
        format!("{:+.1}%", out.stats.speedup_vs(&base.stats) * 100.0)
    };
    println!(
        "{:>24} | {:>8} {:>7} {:>7} {:>10} {:>10}",
        "ASF baseline (paper §IV-A)",
        base.stats.cycles,
        base.stats.tx_aborted,
        base.stats.conflicts.false_total(),
        "—",
        "line bits"
    );
    println!(
        "{:>24} | {:>8} {:>7} {:>7} {:>10} {:>10}",
        "sub-block(4) (the paper)",
        sb4.stats.cycles,
        sb4.stats.tx_aborted,
        sb4.stats.conflicts.false_total(),
        gain(&sb4),
        "sub-blocks"
    );
    println!(
        "{:>24} | {:>8} {:>7} {:>7} {:>10} {:>10}",
        "DPTM-style (§II)",
        dptm.stats.cycles,
        dptm.stats.tx_aborted,
        dptm.stats.conflicts.false_total(),
        gain(&dptm),
        "validation"
    );
    println!(
        "{:>24} | {:>8} {:>7} {:>7} {:>10} {:>10}",
        "LogTM-SE sigs (§II)",
        sig.stats.cycles,
        sig.stats.tx_aborted,
        sig.stats.conflicts.false_total(),
        gain(&sig),
        "Bloom bits"
    );
    println!(
        "\nDPTM removed {} WAR conflicts by speculation (at {} validation aborts);\n\
         signatures kept the baseline's line granularity ({} alias conflicts);\n\
         sub-blocking removed {:.0}% of the false conflicts outright.",
        dptm.stats.war_speculations,
        dptm.stats.aborts_by_cause[5],
        sig.stats.sig_alias_conflicts,
        sb4.stats
            .conflicts
            .false_reduction_vs(&base.stats.conflicts)
            .unwrap_or(0.0)
            * 100.0,
    );
}
