//! Quickstart: build a machine, run a workload under two conflict
//! detectors, and compare what the sub-blocking technique buys.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use asf_core::detector::DetectorKind;
use asf_machine::machine::{Machine, SimConfig};
use asf_workloads::Scale;

fn main() {
    // Pick a benchmark from the paper's Table III suite.
    let workload = asf_workloads::by_name("vacation", Scale::Standard)
        .expect("vacation is part of the suite");

    println!("running `{}` on the paper's 8-core Opteron model…\n", workload.name());

    // Baseline AMD ASF: conflict detection at cache-line granularity.
    let base = Machine::run(&*workload, SimConfig::paper(DetectorKind::Baseline));

    // The paper's technique: speculative sub-blocking state, 4 sub-blocks.
    let sb4 = Machine::run(&*workload, SimConfig::paper(DetectorKind::SubBlock(4)));

    // The ideal system with zero false conflicts.
    let perfect = Machine::run(&*workload, SimConfig::paper(DetectorKind::Perfect));

    for (name, out) in [("baseline", &base), ("sub-block(4)", &sb4), ("perfect", &perfect)] {
        let s = &out.stats;
        println!(
            "{name:>13}: {:>9} cycles | {:>5} commits | {:>5} aborts | {:>5} conflicts \
             ({:>4} false, {:.1}%)",
            s.cycles,
            s.tx_committed,
            s.tx_aborted,
            s.conflicts.total(),
            s.conflicts.false_total(),
            s.conflicts.false_rate().unwrap_or(0.0) * 100.0,
        );
    }

    let f_red = sb4.stats.conflicts.false_reduction_vs(&base.stats.conflicts);
    println!(
        "\nsub-block(4) removed {} of baseline's false conflicts and ran {:.1}% faster \
         (perfect bound: {:.1}%).",
        f_red.map(|r| format!("{:.1}%", r * 100.0)).unwrap_or_else(|| "n/a".into()),
        sb4.stats.speedup_vs(&base.stats) * 100.0,
        perfect.stats.speedup_vs(&base.stats) * 100.0,
    );
    println!(
        "hardware cost: {} extra bits per 64-byte cache line ({} bytes ≈ {:.2}% of the L1).",
        asf_core::overhead::overhead(DetectorKind::SubBlock(4), base_l1()).extra_bits_per_line,
        asf_core::overhead::overhead(DetectorKind::SubBlock(4), base_l1()).extra_bytes,
        asf_core::overhead::overhead(DetectorKind::SubBlock(4), base_l1()).fraction_of_l1 * 100.0,
    );
}

fn base_l1() -> asf_mem::geometry::CacheGeometry {
    asf_mem::config::MachineConfig::opteron_8core().l1
}
