//! Protocol-level tracing: watch every probe, conflict, dirty mark and
//! transaction event of a small contended run.
//!
//! ```text
//! cargo run --release --example trace_walkthrough
//! ```

use asf_core::detector::DetectorKind;
use asf_machine::machine::{Machine, SimConfig};
use asf_machine::txprog::{ScriptedWorkload, TxAttempt, TxOp, WorkItem};
use asf_mem::addr::Addr;
use asf_mem::config::MachineConfig;

fn main() {
    // Three cores around one line: a speculative writer (sub-block 0), a
    // false-sharing reader (sub-block 2), and a truly conflicting reader.
    let w = ScriptedWorkload {
        name: "traced",
        scripts: vec![
            vec![WorkItem::Tx(TxAttempt::new(vec![
                TxOp::Write { addr: Addr(0x2000), size: 8, value: 7 },
                TxOp::WaitUntil { cycle: 4_000 },
            ]))],
            vec![WorkItem::Tx(TxAttempt::new(vec![
                TxOp::WaitUntil { cycle: 1_000 },
                TxOp::Read { addr: Addr(0x2020), size: 8 }, // false sharing: survives
                TxOp::WaitUntil { cycle: 4_500 },
            ]))],
            vec![WorkItem::Tx(TxAttempt::new(vec![
                TxOp::WaitUntil { cycle: 2_000 },
                TxOp::Read { addr: Addr(0x2000), size: 8 }, // true RAW: aborts T0
            ]))],
        ],
    };
    let mut cfg = SimConfig::paper(DetectorKind::SubBlock(4));
    cfg.machine = MachineConfig::opteron_with_cores(3);
    let mut machine = Machine::new(&w, cfg);
    machine.enable_trace(256);
    let out = machine.run_to_completion();

    println!("event log (sub-block 4, requester wins):\n");
    print!("{}", out.trace.expect("tracing enabled").render());
    println!(
        "\nsummary: {} commits, {} aborts, {} conflicts ({} false), {} dirty refetch(es), \
         0 isolation violations (checked: {}).",
        out.stats.tx_committed,
        out.stats.tx_aborted,
        out.stats.conflicts.total(),
        out.stats.conflicts.false_total(),
        out.stats.dirty_refetches,
        out.stats.isolation_violations == 0,
    );
}
