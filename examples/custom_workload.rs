//! Writing your own workload: implement [`Workload`]/[`ThreadProgram`] (or
//! use the `GenProgram` helper from `asf-workloads`) and run it on the
//! simulator. Here: a bank-transfer kernel with a serializability check —
//! the sum of all account balances must be conserved by every transfer.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use asf_core::detector::DetectorKind;
use asf_machine::machine::{Machine, SimConfig};
use asf_machine::txprog::{ThreadProgram, TxAttempt, TxOp, WorkItem, Workload};
use asf_mem::addr::Addr;
use asf_mem::rng::SimRng;

/// 64 accounts of 8 bytes, packed 8 per cache line — adjacent accounts
/// falsely share lines, so baseline ASF aborts transfers that touch
/// different accounts of the same line.
const ACCOUNTS: u64 = 64;
const BASE: u64 = 0x10_0000;
const TRANSFERS_PER_TELLER: usize = 200;
const TELLERS: usize = 8;

fn account(i: u64) -> Addr {
    Addr(BASE + i * 8)
}

struct Bank;

struct Teller {
    rng: SimRng,
    remaining: usize,
}

impl Workload for Bank {
    fn name(&self) -> &'static str {
        "bank"
    }

    fn description(&self) -> &'static str {
        "atomic transfers between packed accounts"
    }

    fn spawn(&self, tid: usize, _threads: usize, seed: u64) -> Box<dyn ThreadProgram> {
        Box::new(Teller {
            rng: SimRng::derive(seed, tid as u64),
            remaining: TRANSFERS_PER_TELLER,
        })
    }
}

impl ThreadProgram for Teller {
    fn next_item(&mut self) -> Option<WorkItem> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let from = self.rng.below(ACCOUNTS);
        let to = (from + 1 + self.rng.below(ACCOUNTS - 1)) % ACCOUNTS;
        let amount = 1 + self.rng.below(9);
        Some(WorkItem::Tx(TxAttempt::new(vec![
            // Debit and credit: two 8-byte read-modify-writes. Replays
            // recompute against current memory, so committed transfers
            // conserve the total balance exactly.
            TxOp::Update { addr: account(from), size: 8, delta: amount.wrapping_neg() },
            TxOp::Update { addr: account(to), size: 8, delta: amount },
            TxOp::Compute { cycles: 40 },
        ])))
    }
}

fn main() {
    for detector in [DetectorKind::Baseline, DetectorKind::SubBlock(8), DetectorKind::Perfect] {
        let out = Machine::run(&Bank, SimConfig::paper(detector));
        // Every transfer conserves the sum, so the final total must be 0
        // (balances are i64 stored as wrapping u64).
        let total: i64 = (0..ACCOUNTS)
            .map(|i| out.memory.read_u64(account(i), 8) as i64)
            .sum();
        println!(
            "{:>10}: total balance {total:>3} | {} transfers committed | {} aborts \
             ({} false conflicts) | {} cycles",
            detector.label(),
            out.stats.tx_committed,
            out.stats.tx_aborted,
            out.stats.conflicts.false_total(),
            out.stats.cycles,
        );
        assert_eq!(total, 0, "money was created or destroyed!");
        assert_eq!(out.stats.tx_committed as usize, TELLERS * TRANSFERS_PER_TELLER);
        assert_eq!(out.stats.isolation_violations, 0);
    }
    println!(
        "\nall detectors preserved atomicity. Note the teaching point: transfers are\n\
         write/write sharing, which sub-blocking deliberately does NOT filter (the\n\
         WAW-any rule — an invalidation would lose buffered speculative data), so\n\
         only the perfect oracle removes these false conflicts. Read-heavy kernels\n\
         (see the paper suite) are where sub-blocking shines."
    );
}
